package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"qfw/internal/cost"
	"qfw/internal/statevec"
)

// AutoExecutor implements the paper's stated future-work extension:
// automated workload-driven backend selection. Routing is driven by the
// calibrated cost model (internal/cost): per-circuit structural features are
// extracted once per spec hash from the cached fusion plan, every registered
// engine is sized (kernel workers from the autotuner, shard counts for the
// distributed path, bond caps from the entanglement bound) and scored on its
// fitted cost curve, and the argmin wins. Clifford circuits short-circuit to
// the stabilizer engine — polynomial simulation beats every dense engine at
// any size worth routing. When no calibration is available (QFW_COST=off)
// the pre-model structural rules apply:
//
//   - Clifford-only circuits      → aer/stabilizer,
//   - nearest-neighbour circuits  → aer/matrix_product_state,
//   - shallow circuits            → qtensor/numpy,
//   - small dense circuits        → aer/statevector,
//   - everything else             → nwqsim/mpi.
//
// Both paths consult only the backends actually registered, so the selector
// works on sessions launched with a backend subset. Batched submissions may
// additionally be split across the top two engines when the model predicts
// the split finishes earlier than any single target.
type AutoExecutor struct {
	execs    map[string]Executor
	cache    *ParseCache
	model    *cost.Model
	memBytes int64 // dense-amplitude budget candidate sizing respects (0 = unbounded)
	fallback bool  // re-route a failed submission to the next ranked engine
}

// NewAutoExecutor wraps the live executors of a session under the
// process-wide cost model (cost.Current). Runtime fallback re-routing is
// on by default: when the chosen engine fails at execution time the
// submission moves to the next ranked candidate instead of failing, and
// the result's Route is annotated "fallback:<engine>".
func NewAutoExecutor(execs map[string]Executor) *AutoExecutor {
	return &AutoExecutor{execs: execs, cache: NewParseCache(), model: cost.Current(), fallback: true}
}

// WithFallback toggles runtime fallback re-routing (the ablation-faults
// bench measures both sides) and returns the executor.
func (a *AutoExecutor) WithFallback(on bool) *AutoExecutor {
	a.fallback = on
	return a
}

// WithModel overrides the cost model (nil forces the structural rules) and
// returns the executor — a hook for tests and tooling.
func (a *AutoExecutor) WithModel(m *cost.Model) *AutoExecutor {
	a.model = m
	return a
}

// WithMemBudget sets the session's dense-amplitude memory budget so the
// ranker withdraws state-vector candidates that could only fail, and keeps
// the truncating MPS route alive when it is the only engine that fits.
func (a *AutoExecutor) WithMemBudget(bytes int64) *AutoExecutor {
	a.memBytes = bytes
	return a
}

// Name implements Executor.
func (a *AutoExecutor) Name() string { return "auto" }

// Capabilities implements Executor. CPU/GPU/NativeMPI are the union of what
// the registered local executors advertise — the selector can only deliver a
// capability some routable backend actually has.
func (a *AutoExecutor) Capabilities() Capabilities {
	var targets []string
	var cpu, gpu, nativeMPI bool
	for name, e := range a.execs {
		if name == "ionq" {
			continue // never a routing target
		}
		targets = append(targets, name)
		caps := e.Capabilities()
		cpu = cpu || caps.CPU
		gpu = gpu || caps.GPU
		nativeMPI = nativeMPI || caps.NativeMPI
	}
	sort.Strings(targets)
	_, _, grads := a.gradientTarget(nil)
	mode := "structural rules"
	if a.model != nil {
		mode = "calibrated cost model"
	}
	return Capabilities{
		Backend:     "auto",
		Subbackends: []string{"workload-driven"},
		CPU:         cpu,
		GPU:         gpu,
		NativeMPI:   nativeMPI,
		Gradients:   grads,
		// Routing never targets the cloud path and is a deterministic
		// function of (spec, opts) within one process, so a seeded auto
		// execution replays exactly like its routed local engine.
		DeterministicSeeded: true,
		Notes: fmt.Sprintf("Workload-driven backend selection (paper future work): routes by %s across %v.",
			mode, targets),
	}
}

// Decision is one routing verdict: the chosen engine, the sized resources,
// the predicted per-element cost (0 without calibration), and — for batches
// — an optional heterogeneous split across a secondary engine.
type Decision struct {
	Backend     string
	Sub         string
	Rule        string // "cost-model", "cost-split", or a structural rule name
	Res         cost.Resources
	PredictedMS float64

	SplitBackend     string
	SplitSub         string
	SplitRes         cost.Resources
	SplitPredictedMS float64
	SplitFrac        float64 // fraction of elements on the primary engine
}

// route renders the annotation string of the decision.
func (d Decision) route() string {
	if d.SplitBackend != "" {
		return fmt.Sprintf("%s/%s+%s/%s (%s)", d.Backend, d.Sub, d.SplitBackend, d.SplitSub, d.Rule)
	}
	return strings.TrimSpace(fmt.Sprintf("%s/%s (%s)", d.Backend, d.Sub, d.Rule))
}

// candidateSubs lists the engine keys the model may route to, per backend.
var candidateSubs = map[string][]string{
	"aer":     {"statevector", "matrix_product_state", "stabilizer"},
	"nwqsim":  {"openmp", "mpi"},
	"qtensor": {"numpy"},
	"tnqvm":   {"exatn-mps"},
}

// decide selects the route for a k-element submission. The cost model path
// ranks sized candidates by predicted runtime; without a model (or when the
// model offers no candidate for this session's backends) the structural
// rules decide.
func (a *AutoExecutor) decide(spec CircuitSpec, k int) (Decision, error) {
	if a.model == nil {
		return a.selectStructural(spec)
	}
	f, err := a.cache.GetFeatures(spec)
	if err != nil {
		return Decision{}, err
	}
	// Clifford circuits short-circuit: the tableau engine is polynomial
	// where everything else is exponential, and exact.
	if f.Clifford {
		if _, ok := a.execs["aer"]; ok {
			d := Decision{Backend: "aer", Sub: "stabilizer", Rule: "clifford"}
			if ms, ok := a.model.PredictMS(cost.AerStab, f, cost.Resources{}); ok {
				d.PredictedMS = ms
			}
			return d, nil
		}
	}
	var engines []string
	for name := range a.execs {
		for _, sub := range candidateSubs[name] {
			engines = append(engines, name+"/"+sub)
		}
	}
	sort.Strings(engines)
	env := cost.Env{Workers: statevec.CurrentTuning().Workers, Cores: runtime.GOMAXPROCS(0), MemBytes: a.memBytes}
	cands := a.model.Rank(f, engines, env)
	if len(cands) == 0 {
		return a.selectStructural(spec)
	}
	best := cands[0]
	backend, sub, _ := strings.Cut(best.Engine, "/")
	d := Decision{Backend: backend, Sub: sub, Rule: "cost-model", Res: best.Res, PredictedMS: best.MS()}
	if plan := a.model.PlanSplit(cands, k); plan != nil {
		sb, ss, _ := strings.Cut(plan.B.Engine, "/")
		d.Rule = "cost-split"
		d.SplitBackend, d.SplitSub = sb, ss
		d.SplitRes = plan.B.Res
		d.SplitPredictedMS = plan.B.MS()
		d.SplitFrac = plan.FracA
	}
	return d, nil
}

// decideRanked returns the primary routing decision followed by the
// ordered fallback candidates (empty tail when fallback is off). Model
// alternates come from the cost ranking; structural alternates — every
// registered local engine in sorted order — close the list so a session
// without calibration still has somewhere to degrade to.
func (a *AutoExecutor) decideRanked(spec CircuitSpec, k int) ([]Decision, error) {
	primary, err := a.decide(spec, k)
	if err != nil {
		return nil, err
	}
	out := []Decision{primary}
	if !a.fallback {
		return out, nil
	}
	seen := map[string]bool{primary.Backend + "/" + primary.Sub: true}
	add := func(backend, sub string, res cost.Resources, ms float64) {
		key := backend + "/" + sub
		if seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Decision{Backend: backend, Sub: sub, Rule: "fallback", Res: res, PredictedMS: ms})
	}
	if a.model != nil {
		if f, ferr := a.cache.GetFeatures(spec); ferr == nil {
			var engines []string
			for name := range a.execs {
				for _, sub := range candidateSubs[name] {
					engines = append(engines, name+"/"+sub)
				}
			}
			sort.Strings(engines)
			env := cost.Env{Workers: statevec.CurrentTuning().Workers, Cores: runtime.GOMAXPROCS(0), MemBytes: a.memBytes}
			for _, c := range a.model.Rank(f, engines, env) {
				backend, sub, _ := strings.Cut(c.Engine, "/")
				add(backend, sub, c.Res, c.MS())
			}
		}
	}
	var names []string
	for name := range a.execs {
		if name != "ionq" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		for _, sub := range candidateSubs[name] {
			add(name, sub, cost.Resources{}, 0)
		}
	}
	return out, nil
}

// selectStructural applies the pre-calibration structural rules against the
// available executors.
func (a *AutoExecutor) selectStructural(spec CircuitSpec) (Decision, error) {
	c, err := a.cache.Get(spec)
	if err != nil {
		return Decision{}, err
	}
	has := func(name string) bool {
		_, ok := a.execs[name]
		return ok
	}
	n := c.NQubits
	depth := c.Depth()
	switch {
	case c.IsClifford() && has("aer"):
		return Decision{Backend: "aer", Sub: "stabilizer", Rule: "clifford"}, nil
	case c.InteractionDistance() <= 1 && n >= 12 && has("aer"):
		return Decision{Backend: "aer", Sub: "matrix_product_state", Rule: "nearest-neighbour"}, nil
	case c.InteractionDistance() <= 1 && n >= 12 && has("tnqvm"):
		return Decision{Backend: "tnqvm", Sub: "exatn-mps", Rule: "nearest-neighbour"}, nil
	case depth <= 8 && n <= 16 && has("qtensor"):
		return Decision{Backend: "qtensor", Sub: "numpy", Rule: "shallow"}, nil
	case n <= 18 && has("aer"):
		return Decision{Backend: "aer", Sub: "statevector", Rule: "small-dense"}, nil
	case has("nwqsim"):
		return Decision{Backend: "nwqsim", Sub: "mpi", Rule: "large-dense"}, nil
	}
	// Fall back to any local executor, preferring deterministic order.
	var names []string
	for name := range a.execs {
		if name != "ionq" {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return Decision{}, fmt.Errorf("auto: no local backend available to route to")
	}
	return Decision{Backend: names[0], Rule: "fallback"}, nil
}

// applyResources writes the sized resources into the options, never
// overriding knobs the caller set explicitly.
func applyResources(backend, sub string, res cost.Resources, opts *RunOptions) {
	opts.Subbackend = sub
	if res.MaxBond > 0 && opts.MaxBond == 0 {
		opts.MaxBond = res.MaxBond
	}
	if backend == "nwqsim" && sub == "mpi" && res.Ranks > 0 && opts.Nodes == 0 && opts.ProcsPerNode == 0 {
		opts.Nodes = 1
		opts.ProcsPerNode = res.Ranks
	}
}

// annotate stamps the routing metadata on a result.
func annotate(res *ExecResult, route string, predictedMS, actualMS float64, split bool) {
	if res.Extra == nil {
		res.Extra = map[string]float64{}
	}
	res.Extra["auto_routed"] = 1
	if predictedMS > 0 {
		res.Extra["auto_predicted_ms"] = predictedMS
	}
	if actualMS > 0 {
		res.Extra["auto_actual_ms"] = actualMS
	}
	if split {
		res.Extra["auto_split"] = 1
	}
	res.Route = route
}

// Execute implements Executor: decide, delegate, and annotate the result
// with the route plus predicted-vs-actual runtime. When the chosen engine
// fails and fallback is on, the next ranked candidate takes the
// submission; the first (primary) error is what callers see if every
// candidate fails.
func (a *AutoExecutor) Execute(spec CircuitSpec, opts RunOptions) (ExecResult, error) {
	cands, err := a.decideRanked(spec, 1)
	if err != nil {
		return ExecResult{}, err
	}
	var firstErr error
	for ci, d := range cands {
		target, ok := a.execs[d.Backend]
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("auto: selected backend %q not available", d.Backend)
			}
			continue
		}
		// applyResources mutates the options: each attempt sizes a fresh copy
		// so a fallback engine is not constrained by the primary's sizing.
		attemptOpts := opts
		applyResources(d.Backend, d.Sub, d.Res, &attemptOpts)
		start := time.Now()
		res, err := target.Execute(spec, attemptOpts)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("auto[%s->%s/%s]: %w", d.Rule, d.Backend, d.Sub, err)
			}
			continue
		}
		route := d.route()
		if ci > 0 {
			route = fmt.Sprintf("fallback:%s/%s (after %s/%s)", d.Backend, d.Sub, cands[0].Backend, cands[0].Sub)
		}
		annotate(&res, route, d.PredictedMS, float64(time.Since(start))/float64(time.Millisecond), false)
		return res, nil
	}
	return ExecResult{}, firstErr
}

// ExecuteBatch implements BatchExecutor: the route is decided once per batch
// from the shared spec. A homogeneous batch is delegated whole — natively
// when the target supports batches, otherwise by rebinding each element
// through the selector's parse cache. When the model predicts a
// heterogeneous split beats any single engine, the head of the batch runs on
// the primary and the tail concurrently on the secondary, with the tail's
// base seed offset so every element keeps the exact seed it would have had
// unsplit.
func (a *AutoExecutor) ExecuteBatch(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]ExecResult, error) {
	cands, err := a.decideRanked(spec, len(bindings))
	if err != nil {
		return nil, err
	}
	if d := cands[0]; d.SplitBackend != "" {
		if results, err := a.executeSplit(d, spec, bindings, opts); err == nil {
			return results, nil
		}
		// A failed split (e.g. the secondary engine rejects the circuit)
		// falls back to the primary engine whole rather than failing the
		// submission.
	}
	var firstErr error
	for ci, d := range cands {
		rule := singleRule(d)
		results, err := a.delegateBatch(d.Backend, d.Sub, d.Res, spec, bindings, opts, 0)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("auto[%s->%s/%s]: %w", rule, d.Backend, d.Sub, err)
			}
			continue
		}
		route := fmt.Sprintf("%s/%s (%s)", d.Backend, d.Sub, rule)
		if ci > 0 {
			route = fmt.Sprintf("fallback:%s/%s (after %s/%s)", d.Backend, d.Sub, cands[0].Backend, cands[0].Sub)
		}
		for i := range results {
			annotate(&results[i], route, d.PredictedMS, 0, false)
		}
		return results, nil
	}
	return nil, firstErr
}

// singleRule is the rule label when a split decision degrades to a whole-
// batch delegation.
func singleRule(d Decision) string {
	if d.Rule == "cost-split" {
		return "cost-model"
	}
	return d.Rule
}

// executeSplit runs the head of the batch on the primary engine and the
// tail on the secondary, concurrently, reassembling results in order.
func (a *AutoExecutor) executeSplit(d Decision, spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]ExecResult, error) {
	k := len(bindings)
	nA := int(math.Round(d.SplitFrac * float64(k)))
	if nA < 1 {
		nA = 1
	}
	if nA > k-1 {
		nA = k - 1
	}
	var (
		wg         sync.WaitGroup
		resA, resB []ExecResult
		errA, errB error
	)
	wg.Add(2)
	go func() {
		defer wg.Done()
		resA, errA = a.delegateBatch(d.Backend, d.Sub, d.Res, spec, bindings[:nA], opts, 0)
	}()
	go func() {
		defer wg.Done()
		resB, errB = a.delegateBatch(d.SplitBackend, d.SplitSub, d.SplitRes, spec, bindings[nA:], opts, nA)
	}()
	wg.Wait()
	if errA != nil {
		return nil, fmt.Errorf("auto[cost-split->%s/%s]: %w", d.Backend, d.Sub, errA)
	}
	if errB != nil {
		return nil, fmt.Errorf("auto[cost-split->%s/%s]: %w", d.SplitBackend, d.SplitSub, errB)
	}
	results := append(resA, resB...)
	route := d.route()
	for i := range results {
		pred := d.PredictedMS
		if i >= nA {
			pred = d.SplitPredictedMS
		}
		annotate(&results[i], route, pred, 0, true)
	}
	return results, nil
}

// delegateBatch runs a (sub-)batch on one engine. seedOffset shifts the base
// seed so a split tail reproduces exactly the per-element seeds
// (RunOptions.ForElement) it would have received in the unsplit batch.
func (a *AutoExecutor) delegateBatch(backend, sub string, res cost.Resources, spec CircuitSpec, bindings []Bindings, opts RunOptions, seedOffset int) ([]ExecResult, error) {
	target, ok := a.execs[backend]
	if !ok {
		return nil, fmt.Errorf("auto: selected backend %q not available", backend)
	}
	applyResources(backend, sub, res, &opts)
	if seedOffset > 0 {
		if opts.Seed == 0 {
			opts.Seed = 1 // ForElement's implicit base
		}
		opts.Seed += int64(seedOffset)
	}
	if be, ok := target.(BatchExecutor); ok {
		return be.ExecuteBatch(spec, bindings, opts)
	}
	base, err := a.cache.Get(spec)
	if err != nil {
		return nil, err
	}
	results := make([]ExecResult, len(bindings))
	for i, b := range bindings {
		bound := base.Bind(b)
		elemSpec, serr := SpecFromCircuit(bound)
		if serr != nil {
			return nil, serr
		}
		results[i], err = target.Execute(elemSpec, opts.ForElement(i))
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// gradPreference is the fixed adjoint-engine fallback order.
var gradPreference = []string{"aer", "nwqsim"}

// svKeyOf maps a backend to the statevector-family engine key its adjoint
// path runs on (the adjoint sweep is dense statevector work).
func svKeyOf(backend string) (string, bool) {
	switch backend {
	case "aer":
		return cost.AerSV, true
	case "nwqsim":
		return cost.NWQOpenMP, true
	}
	return "", false
}

// gradCand is one gradient-capable delegation target.
type gradCand struct {
	name string
	ge   GradientExecutor
}

// gradientTargets is the single discovery point for gradient delegation:
// Capabilities and ExecuteGradient both consult it, so the advertised
// capability can never disagree with the dispatch. With features and a
// calibration the gradient-capable engines are ranked by predicted adjoint
// cost (one forward plus two adjoint sweeps ≈ 3 circuit-equivalents of
// dense statevector work); otherwise the known adjoint engines are
// preferred in a fixed order, then any other GradientExecutor in
// sorted-name order for determinism. The whole ordered list comes back so
// a failed delegation can fall through to the next engine.
func (a *AutoExecutor) gradientTargets(f *cost.Features) []gradCand {
	var rest []string
	for name := range a.execs {
		if name != "aer" && name != "nwqsim" {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	names := append(append([]string{}, gradPreference...), rest...)
	if a.model != nil && f != nil {
		type scored struct {
			name string
			ms   float64
			idx  int
		}
		var sc []scored
		for i, name := range names {
			if _, ok := a.execs[name].(GradientExecutor); !ok {
				continue
			}
			ms := math.Inf(1)
			if key, ok := svKeyOf(name); ok {
				if p, ok := a.model.PredictMS(key, f, cost.Resources{Workers: statevec.CurrentTuning().Workers}); ok {
					ms = 3 * p
				}
			}
			sc = append(sc, scored{name, ms, i})
		}
		sort.Slice(sc, func(i, j int) bool {
			if sc[i].ms != sc[j].ms {
				return sc[i].ms < sc[j].ms
			}
			return sc[i].idx < sc[j].idx
		})
		out := make([]gradCand, 0, len(sc))
		for _, s := range sc {
			out = append(out, gradCand{s.name, a.execs[s.name].(GradientExecutor)})
		}
		return out
	}
	var out []gradCand
	for _, name := range names {
		if ge, ok := a.execs[name].(GradientExecutor); ok {
			out = append(out, gradCand{name, ge})
		}
	}
	return out
}

func (a *AutoExecutor) gradientTarget(f *cost.Features) (string, GradientExecutor, bool) {
	if cands := a.gradientTargets(f); len(cands) > 0 {
		return cands[0].name, cands[0].ge, true
	}
	return "", nil, false
}

// ExecuteGradient implements GradientExecutor by delegating to the
// gradient-capable local backend with the lowest predicted adjoint cost
// (fixed preference order without calibration). Gradient evaluation needs
// dense simulator state, so the routing candidates are the adjoint engines
// only and the sub-backend is left to the target's default.
func (a *AutoExecutor) ExecuteGradient(spec CircuitSpec, bindings []Bindings, opts RunOptions) ([]GradResult, error) {
	var f *cost.Features
	if a.model != nil {
		if ff, err := a.cache.GetFeatures(spec); err == nil {
			f = ff
		}
	}
	cands := a.gradientTargets(f)
	if len(cands) == 0 {
		return nil, fmt.Errorf("auto: no gradient-capable backend available")
	}
	opts.Subbackend = ""
	var firstErr error
	for _, c := range cands {
		res, err := c.ge.ExecuteGradient(spec, bindings, opts)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("auto[gradient->%s]: %w", c.name, err)
			}
			if !a.fallback {
				break
			}
			continue
		}
		return res, nil
	}
	return nil, firstErr
}

// Decide exposes the full routing decision for a k-element submission
// (tests, tooling, the bench route table).
func (a *AutoExecutor) Decide(spec CircuitSpec, k int) (Decision, error) {
	if k < 1 {
		k = 1
	}
	return a.decide(spec, k)
}

// RouteFor exposes the selection decision for inspection (tests, tooling).
func (a *AutoExecutor) RouteFor(spec CircuitSpec) (backend, sub, rule string, err error) {
	d, err := a.decide(spec, 1)
	return d.Backend, d.Sub, d.Rule, err
}
