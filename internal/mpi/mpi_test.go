package mpi

import (
	"math"
	"sync/atomic"
	"testing"
	"time"

	"qfw/internal/cluster"
)

func TestSendRecv(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 7, []float64{1, 2, 3})
		} else {
			got := c.Recv(0, 7).([]float64)
			if len(got) != 3 || got[2] != 3 {
				t.Errorf("recv got %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		mine := []int{c.Rank()}
		theirs := c.Sendrecv(1-c.Rank(), 3, mine).([]int)
		if theirs[0] != 1-c.Rank() {
			t.Errorf("rank %d got %v", c.Rank(), theirs)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	w := NewWorld(4)
	var before, after atomic.Int32
	err := w.Run(func(c *Comm) error {
		before.Add(1)
		c.Barrier()
		if before.Load() != 4 {
			t.Errorf("rank %d passed barrier with before=%d", c.Rank(), before.Load())
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != 4 {
		t.Fatalf("after=%d", after.Load())
	}
}

func TestBcast(t *testing.T) {
	w := NewWorld(5)
	err := w.Run(func(c *Comm) error {
		var v any
		if c.Rank() == 2 {
			v = "hello"
		}
		got := c.Bcast(2, v)
		if got.(string) != "hello" {
			t.Errorf("rank %d bcast got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	w := NewWorld(8)
	err := w.Run(func(c *Comm) error {
		got := c.AllreduceSum(float64(c.Rank()))
		if math.Abs(got-28) > 1e-12 { // 0+1+...+7
			t.Errorf("rank %d allreduce got %g", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherScatter(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		g := c.Gather(0, c.Rank()*10)
		if c.Rank() == 0 {
			for r := 0; r < 3; r++ {
				if g[r].(int) != r*10 {
					t.Errorf("gather[%d] = %v", r, g[r])
				}
			}
		} else if g != nil {
			t.Errorf("non-root gather returned %v", g)
		}
		var vals []any
		if c.Rank() == 0 {
			vals = []any{"a", "b", "c"}
		}
		mine := c.Scatter(0, vals)
		want := string(rune('a' + c.Rank()))
		if mine.(string) != want {
			t.Errorf("rank %d scatter got %v", c.Rank(), mine)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		all := c.Allgather(c.Rank() * c.Rank())
		for r := 0; r < 4; r++ {
			if all[r].(int) != r*r {
				t.Errorf("allgather[%d] = %v", r, all[r])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		vals := make([]any, 3)
		for d := 0; d < 3; d++ {
			vals[d] = c.Rank()*100 + d
		}
		got := c.Alltoall(vals)
		for s := 0; s < 3; s++ {
			if got[s].(int) != s*100+c.Rank() {
				t.Errorf("rank %d alltoall[%d] = %v", c.Rank(), s, got[s])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagMismatchPanicsAndIsReported(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, nil)
		} else {
			c.Recv(0, 2)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected tag mismatch error")
	}
}

func TestCostModelChargesInterNode(t *testing.T) {
	places := []cluster.CorePlace{
		{Node: 0, LLC: 0, Core: 0},
		{Node: 1, LLC: 0, Core: 0},
	}
	net := cluster.Interconnect{InterNodeLatency: 5 * time.Millisecond}
	var charged atomic.Int64
	w := NewWorld(2,
		WithPlacement(places, net),
		WithSleeper(func(d time.Duration) { charged.Add(int64(d)) }))
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []byte{1, 2, 3})
		} else {
			c.Recv(0, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if time.Duration(charged.Load()) < 5*time.Millisecond {
		t.Fatalf("inter-node transfer not charged: %v", time.Duration(charged.Load()))
	}
}

func TestAlltoallCostAcrossTiers(t *testing.T) {
	// 4 ranks: (0,1) share node 0 but sit in different LLC domains; (2,3)
	// likewise on node 1. An Alltoall sends 12 cross-rank messages: 8 cross
	// the node boundary, 4 stay intra-node/cross-LLC. The recorded sleep
	// must equal the tier-weighted sum exactly (bandwidth term disabled).
	places := []cluster.CorePlace{
		{Node: 0, LLC: 0, Core: 0},
		{Node: 0, LLC: 1, Core: 0},
		{Node: 1, LLC: 0, Core: 0},
		{Node: 1, LLC: 1, Core: 0},
	}
	net := cluster.Interconnect{
		IntraLLCLatency:  1 * time.Millisecond,
		IntraNodeLatency: 3 * time.Millisecond,
		InterNodeLatency: 10 * time.Millisecond,
	}
	var charged atomic.Int64
	w := NewWorld(4,
		WithPlacement(places, net),
		WithSleeper(func(d time.Duration) { charged.Add(int64(d)) }))
	err := w.Run(func(c *Comm) error {
		vals := make([]any, 4)
		for d := 0; d < 4; d++ {
			vals[d] = c.Rank()*10 + d
		}
		got := c.Alltoall(vals)
		for s := 0; s < 4; s++ {
			if got[s].(int) != s*10+c.Rank() {
				t.Errorf("rank %d alltoall[%d] = %v", c.Rank(), s, got[s])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 8*10*time.Millisecond + 4*3*time.Millisecond
	if got := time.Duration(charged.Load()); got != want {
		t.Fatalf("alltoall charged %v, want %v", got, want)
	}
}

func TestSendrecvCostAndByteAccounting(t *testing.T) {
	places := []cluster.CorePlace{
		{Node: 0, LLC: 0, Core: 0},
		{Node: 0, LLC: 0, Core: 1},
	}
	net := cluster.Interconnect{
		IntraLLCLatency:      2 * time.Millisecond,
		BandwidthBytesPerSec: 1e6, // 1 MB/s so the volume term is visible
	}
	var charged atomic.Int64
	w := NewWorld(2,
		WithPlacement(places, net),
		WithSleeper(func(d time.Duration) { charged.Add(int64(d)) }))
	const amps = 1000 // 16 KB of complex128 per direction
	err := w.Run(func(c *Comm) error {
		mine := make([]complex128, amps)
		theirs := c.Sendrecv(1-c.Rank(), 5, mine).([]complex128)
		if len(theirs) != amps {
			t.Errorf("rank %d received %d amps", c.Rank(), len(theirs))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Two directed transfers: latency plus 16000 bytes over 1 MB/s each.
	perMsg := 2*time.Millisecond + time.Duration(16000.0/1e6*float64(time.Second))
	if got := time.Duration(charged.Load()); got != 2*perMsg {
		t.Fatalf("sendrecv charged %v, want %v", got, 2*perMsg)
	}
	if got := w.BytesSent(); got != 2*16*amps {
		t.Fatalf("BytesSent = %d, want %d", got, 2*16*amps)
	}
	if got := w.MessagesSent(); got != 2 {
		t.Fatalf("MessagesSent = %d, want 2", got)
	}
	w.ResetCounters()
	if w.BytesSent() != 0 || w.MessagesSent() != 0 {
		t.Fatal("ResetCounters left counters non-zero")
	}
}

func TestAlltoallCountsOnlyCrossRankBytes(t *testing.T) {
	// The rank's own chunk never crosses a link: 3 ranks exchanging 8-byte
	// ints must count 6 messages, not 9.
	w := NewWorld(3)
	err := w.Run(func(c *Comm) error {
		vals := []any{1, 2, 3}
		c.Alltoall(vals)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.MessagesSent(); got != 6 {
		t.Fatalf("MessagesSent = %d, want 6", got)
	}
	if got := w.BytesSent(); got != 6*16 {
		t.Fatalf("BytesSent = %d, want %d", got, 6*16)
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			// Rank 0 must not deadlock waiting: use no communication here.
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected panic to surface as error")
	}
}
