// Package mpi provides an MPI-like message-passing layer over goroutines:
// communicators with ranks, tagged point-to-point sends/receives, and the
// collective operations the distributed simulators need (barrier, broadcast,
// reduce, allreduce, gather, allgather, scatter, alltoall).
//
// A World is the in-process analog of MPI_COMM_WORLD. Each rank is a
// goroutine launched by World.Run. An optional cost model (driven by the
// cluster package's interconnect and core placements) injects transfer
// delays so that communication-bound scaling effects — e.g. the paper's
// observation that crossing an LLC domain raises QAOA runtimes — reproduce
// qualitatively on a laptop.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"qfw/internal/cluster"
)

// envelope is one in-flight message.
type envelope struct {
	tag  int
	data any
}

// World owns the mailboxes of a fixed-size communicator.
type World struct {
	Size int

	chans  [][]chan envelope // chans[src][dst]
	places []cluster.CorePlace
	net    *cluster.Interconnect
	sleep  func(time.Duration)

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
}

// BytesSent returns the cumulative wire bytes of every cross-rank message
// sent through the world, sized by the same payload model the interconnect
// cost uses. Rank-local data (e.g. an Alltoall's own chunk) is not counted —
// it never crosses a link. The distributed-simulator ablation reads this to
// compare communication volume between execution strategies.
func (w *World) BytesSent() int64 { return w.bytesSent.Load() }

// MessagesSent returns the cumulative cross-rank message count.
func (w *World) MessagesSent() int64 { return w.msgsSent.Load() }

// ResetCounters zeroes the byte/message counters (between ablation runs).
func (w *World) ResetCounters() {
	w.bytesSent.Store(0)
	w.msgsSent.Store(0)
}

// Option configures a World.
type Option func(*World)

// WithPlacement attaches core placements and an interconnect model; message
// transfers then cost time according to the placement of the two ranks.
func WithPlacement(places []cluster.CorePlace, net cluster.Interconnect) Option {
	return func(w *World) {
		w.places = places
		w.net = &net
	}
}

// WithSleeper overrides the delay function (tests use a recorder).
func WithSleeper(f func(time.Duration)) Option {
	return func(w *World) { w.sleep = f }
}

// NewWorld creates a communicator world of the given size.
func NewWorld(size int, opts ...Option) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{Size: size, sleep: time.Sleep}
	w.chans = make([][]chan envelope, size)
	for s := 0; s < size; s++ {
		w.chans[s] = make([]chan envelope, size)
		for d := 0; d < size; d++ {
			w.chans[s][d] = make(chan envelope, 64)
		}
	}
	for _, o := range opts {
		o(w)
	}
	if w.places != nil && len(w.places) != size {
		panic(fmt.Sprintf("mpi: %d placements for %d ranks", len(w.places), size))
	}
	return w
}

// Comm is one rank's view of the world.
type Comm struct {
	w    *World
	rank int
}

// Comm returns the communicator handle for a rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.Size {
		panic("mpi: rank out of range")
	}
	return &Comm{w: w, rank: rank}
}

// Run launches fn on every rank and waits for completion, returning the
// first error (the SPMD entry point, analogous to mpirun).
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.Size)
	var wg sync.WaitGroup
	for r := 0; r < w.Size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.w.Size }

// chargeTransfer injects the modelled communication cost for a payload.
func (c *Comm) chargeTransfer(peer int, data any) {
	w := c.w
	if w.net == nil || w.places == nil {
		return
	}
	d := w.net.Transfer(w.places[c.rank], w.places[peer], payloadBytes(data))
	if d > 0 {
		w.sleep(d)
	}
}

// payloadBytes estimates the wire size of a payload for the cost model.
func payloadBytes(data any) int {
	switch v := data.(type) {
	case nil:
		return 0
	case []complex128:
		return len(v) * 16
	case []float64:
		return len(v) * 8
	case []int:
		return len(v) * 8
	case []byte:
		return len(v)
	case string:
		return len(v)
	case float64, int, int64, complex128:
		return 16
	default:
		return 64
	}
}

// Send delivers data to dst with a tag. Buffer ownership transfers to the
// receiver: the sender must not mutate slices after sending.
func (c *Comm) Send(dst, tag int, data any) {
	c.w.bytesSent.Add(int64(payloadBytes(data)))
	c.w.msgsSent.Add(1)
	c.chargeTransfer(dst, data)
	c.w.chans[c.rank][dst] <- envelope{tag: tag, data: data}
}

// Recv blocks for the next message from src and validates its tag — the
// framework's communication patterns are deterministic SPMD, so a tag
// mismatch is a protocol bug worth failing loudly on.
func (c *Comm) Recv(src, tag int) any {
	env := <-c.w.chans[src][c.rank]
	if env.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, env.tag))
	}
	return env.data
}

// Sendrecv concurrently sends to and receives from a peer — the deadlock-free
// exchange primitive used for distributed state-vector pair swaps.
func (c *Comm) Sendrecv(peer, tag int, data any) any {
	done := make(chan any, 1)
	go func() { done <- c.Recv(peer, tag) }()
	c.Send(peer, tag, data)
	return <-done
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() {
	const tag = -1
	if c.rank == 0 {
		for r := 1; r < c.Size(); r++ {
			c.Recv(r, tag)
		}
		for r := 1; r < c.Size(); r++ {
			c.Send(r, tag, nil)
		}
		return
	}
	c.Send(0, tag, nil)
	c.Recv(0, tag)
}

// Bcast distributes root's value to all ranks and returns the local copy.
func (c *Comm) Bcast(root int, data any) any {
	const tag = -2
	if c.rank == root {
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.Send(r, tag, data)
			}
		}
		return data
	}
	return c.Recv(root, tag)
}

// ReduceFloat64 combines per-rank values at root with op; non-root ranks
// receive 0.
func (c *Comm) ReduceFloat64(root int, value float64, op func(a, b float64) float64) float64 {
	const tag = -3
	if c.rank == root {
		acc := value
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			acc = op(acc, c.Recv(r, tag).(float64))
		}
		return acc
	}
	c.Send(root, tag, value)
	return 0
}

// AllreduceFloat64 combines values across all ranks and returns the result
// on every rank.
func (c *Comm) AllreduceFloat64(value float64, op func(a, b float64) float64) float64 {
	acc := c.ReduceFloat64(0, value, op)
	return c.Bcast(0, acc).(float64)
}

// AllreduceSum is the common sum reduction.
func (c *Comm) AllreduceSum(value float64) float64 {
	return c.AllreduceFloat64(value, func(a, b float64) float64 { return a + b })
}

// Gather collects one value per rank at root (index = rank); non-root ranks
// receive nil.
func (c *Comm) Gather(root int, value any) []any {
	const tag = -4
	if c.rank == root {
		out := make([]any, c.Size())
		out[root] = value
		for r := 0; r < c.Size(); r++ {
			if r != root {
				out[r] = c.Recv(r, tag)
			}
		}
		return out
	}
	c.Send(root, tag, value)
	return nil
}

// Allgather collects one value per rank on every rank.
func (c *Comm) Allgather(value any) []any {
	gathered := c.Gather(0, value)
	res := c.Bcast(0, gathered)
	return res.([]any)
}

// Scatter distributes values[r] from root to rank r and returns the local one.
func (c *Comm) Scatter(root int, values []any) any {
	const tag = -5
	if c.rank == root {
		if len(values) != c.Size() {
			panic("mpi: scatter length mismatch")
		}
		for r := 0; r < c.Size(); r++ {
			if r != root {
				c.Send(r, tag, values[r])
			}
		}
		return values[root]
	}
	return c.Recv(root, tag)
}

// Alltoall exchanges values[d] to rank d and returns what each rank sent us.
func (c *Comm) Alltoall(values []any) []any {
	const tag = -6
	if len(values) != c.Size() {
		panic("mpi: alltoall length mismatch")
	}
	out := make([]any, c.Size())
	out[c.rank] = values[c.rank]
	done := make(chan struct{})
	go func() {
		for r := 0; r < c.Size(); r++ {
			if r != c.rank {
				out[r] = c.Recv(r, tag)
			}
		}
		close(done)
	}()
	for r := 0; r < c.Size(); r++ {
		if r != c.rank {
			c.Send(r, tag, values[r])
		}
	}
	<-done
	return out
}
