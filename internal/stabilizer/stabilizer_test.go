package stabilizer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"qfw/internal/circuit"
	"qfw/internal/statevec"
)

func TestGHZCorrelations(t *testing.T) {
	c := circuit.New(4)
	c.H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	counts, err := Simulate(c, 2000, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for key, n := range counts {
		if key != "0000" && key != "1111" {
			t.Fatalf("GHZ produced %q x%d", key, n)
		}
	}
	if counts["0000"] < 800 || counts["1111"] < 800 {
		t.Fatalf("GHZ counts skewed: %v", counts)
	}
}

func TestDeterministicOutcome(t *testing.T) {
	c := circuit.New(2)
	c.X(0).MeasureAll()
	counts, err := Simulate(c, 100, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if counts["01"] != 100 {
		t.Fatalf("deterministic X measurement wrong: %v", counts)
	}
}

func TestRejectsNonClifford(t *testing.T) {
	c := circuit.New(1)
	c.T(0)
	if _, err := Simulate(c, 10, rand.New(rand.NewSource(3))); err == nil {
		t.Fatal("expected error for T gate")
	}
}

func TestResetAndMidCircuitMeasure(t *testing.T) {
	c := circuit.New(2)
	c.X(0).Measure(0, 0).Reset(0).Measure(0, 1)
	counts, err := Simulate(c, 50, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	// cbit0=1, cbit1=0 -> key "01" (cbit 0 rightmost).
	if counts["01"] != 50 {
		t.Fatalf("reset semantics wrong: %v", counts)
	}
}

func randomClifford(n, depth int, rng *rand.Rand) *circuit.Circuit {
	kinds := []circuit.Kind{circuit.KindH, circuit.KindX, circuit.KindY, circuit.KindZ,
		circuit.KindS, circuit.KindSdg, circuit.KindCX, circuit.KindCZ, circuit.KindSWAP, circuit.KindCY}
	c := circuit.New(n)
	for i := 0; i < depth; i++ {
		k := kinds[rng.Intn(len(kinds))]
		qs := rng.Perm(n)[:k.NumQubits()]
		c.Append(circuit.Gate{Kind: k, Qubits: qs})
	}
	return c
}

func TestQuickAgreesWithStatevector(t *testing.T) {
	// Property: outcome distributions of random Clifford circuits match the
	// state-vector simulator within sampling error.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		c := randomClifford(n, 15, rng)
		c.MeasureAll()
		shots := 3000
		sc, err := Simulate(c, shots, rand.New(rand.NewSource(seed+1)))
		if err != nil {
			return false
		}
		vc := statevec.Simulate(c, shots, 1, rand.New(rand.NewSource(seed+2)))
		// Compare per-outcome frequencies.
		keys := map[string]bool{}
		for k := range sc {
			keys[k] = true
		}
		for k := range vc {
			keys[k] = true
		}
		for k := range keys {
			fa := float64(sc[k]) / float64(shots)
			fb := float64(vc[k]) / float64(shots)
			if math.Abs(fa-fb) > 0.06 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func TestTableauCopyIndependent(t *testing.T) {
	a := New(3)
	b := a.Copy()
	a.H(0)
	// Measuring qubit 0 on b must be deterministic 0 (b untouched).
	if out := b.Measure(0, rand.New(rand.NewSource(6))); out != 0 {
		t.Fatalf("copy not independent, measured %d", out)
	}
}

func TestBellPairRandomButCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sawZero, sawOne := false, false
	for trial := 0; trial < 50; trial++ {
		tab := New(2)
		tab.H(0)
		tab.CX(0, 1)
		m0 := tab.Measure(0, rng)
		m1 := tab.Measure(1, rng)
		if m0 != m1 {
			t.Fatalf("Bell pair decorrelated: %d %d", m0, m1)
		}
		if m0 == 0 {
			sawZero = true
		} else {
			sawOne = true
		}
	}
	if !sawZero || !sawOne {
		t.Fatal("measurement not random")
	}
}
