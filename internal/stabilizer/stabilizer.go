// Package stabilizer implements the Aaronson–Gottesman CHP tableau simulator
// for Clifford circuits. It backs Qiskit Aer's "stabilizer" sub-backend in
// the framework and is the fast path chosen by the "automatic" selector for
// Clifford-only workloads such as GHZ preparation.
package stabilizer

import (
	"fmt"
	"math/rand"

	"qfw/internal/circuit"
)

// Tableau is the CHP stabilizer tableau: rows 0..n-1 are destabilizers,
// rows n..2n-1 are stabilizers, plus one scratch row. x and z are bit
// matrices (booleans), r holds the phase bits.
type Tableau struct {
	N int
	x [][]bool
	z [][]bool
	r []bool
}

// New returns the tableau of |0...0>.
func New(n int) *Tableau {
	if n < 1 {
		panic("stabilizer: need at least one qubit")
	}
	t := &Tableau{N: n}
	rows := 2*n + 1
	t.x = make([][]bool, rows)
	t.z = make([][]bool, rows)
	t.r = make([]bool, rows)
	for i := range t.x {
		t.x[i] = make([]bool, n)
		t.z[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		t.x[i][i] = true   // destabilizer X_i
		t.z[n+i][i] = true // stabilizer Z_i
	}
	return t
}

// Copy returns a deep copy.
func (t *Tableau) Copy() *Tableau {
	out := &Tableau{N: t.N, r: append([]bool(nil), t.r...)}
	out.x = make([][]bool, len(t.x))
	out.z = make([][]bool, len(t.z))
	for i := range t.x {
		out.x[i] = append([]bool(nil), t.x[i]...)
		out.z[i] = append([]bool(nil), t.z[i]...)
	}
	return out
}

// H applies a Hadamard on qubit q.
func (t *Tableau) H(q int) {
	for i := range t.x {
		t.r[i] = t.r[i] != (t.x[i][q] && t.z[i][q])
		t.x[i][q], t.z[i][q] = t.z[i][q], t.x[i][q]
	}
}

// S applies the phase gate on qubit q.
func (t *Tableau) S(q int) {
	for i := range t.x {
		t.r[i] = t.r[i] != (t.x[i][q] && t.z[i][q])
		t.z[i][q] = t.z[i][q] != t.x[i][q]
	}
}

// CX applies a CNOT with the given control and target.
func (t *Tableau) CX(c, q int) {
	for i := range t.x {
		t.r[i] = t.r[i] != (t.x[i][c] && t.z[i][q] && (t.x[i][q] != (!t.z[i][c])))
		t.x[i][q] = t.x[i][q] != t.x[i][c]
		t.z[i][c] = t.z[i][c] != t.z[i][q]
	}
}

// Derived Cliffords.

// X applies Pauli X (= H S S H... implemented via phase flips directly).
func (t *Tableau) X(q int) { t.H(q); t.Z(q); t.H(q) }

// Z applies Pauli Z (= S S).
func (t *Tableau) Z(q int) { t.S(q); t.S(q) }

// Y applies Pauli Y (= S X S S S... use Z then X with phase, phases of ±i
// cancel in the tableau representation).
func (t *Tableau) Y(q int) { t.Z(q); t.X(q) }

// Sdg applies S† (= S S S).
func (t *Tableau) Sdg(q int) { t.S(q); t.S(q); t.S(q) }

// CZ applies a controlled-Z.
func (t *Tableau) CZ(c, q int) { t.H(q); t.CX(c, q); t.H(q) }

// SWAP exchanges two qubits.
func (t *Tableau) SWAP(a, b int) { t.CX(a, b); t.CX(b, a); t.CX(a, b) }

// rowsum implements the CHP "rowsum" operation: row h ← row h * row i,
// tracking the phase exponent mod 4.
func (t *Tableau) rowsum(h, i int) {
	g := 0 // phase exponent accumulator (mod 4)
	for j := 0; j < t.N; j++ {
		x1, z1 := t.x[i][j], t.z[i][j]
		x2, z2 := t.x[h][j], t.z[h][j]
		switch {
		case !x1 && !z1:
			// identity contributes 0
		case x1 && z1: // Y
			g += b2i(z2) - b2i(x2)
		case x1 && !z1: // X
			g += b2i(z2) * (2*b2i(x2) - 1)
		case !x1 && z1: // Z
			g += b2i(x2) * (1 - 2*b2i(z2))
		}
	}
	g += 2*b2i(t.r[h]) + 2*b2i(t.r[i])
	g %= 4
	if g < 0 {
		g += 4
	}
	t.r[h] = g == 2
	for j := 0; j < t.N; j++ {
		t.x[h][j] = t.x[h][j] != t.x[i][j]
		t.z[h][j] = t.z[h][j] != t.z[i][j]
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Measure performs a computational-basis measurement of qubit q.
func (t *Tableau) Measure(q int, rng *rand.Rand) int {
	n := t.N
	p := -1
	for i := n; i < 2*n; i++ {
		if t.x[i][q] {
			p = i
			break
		}
	}
	if p >= 0 {
		// Outcome is random.
		for i := 0; i < 2*n; i++ {
			if i != p && t.x[i][q] {
				t.rowsum(i, p)
			}
		}
		copy(t.x[p-n], t.x[p])
		copy(t.z[p-n], t.z[p])
		t.r[p-n] = t.r[p]
		for j := 0; j < n; j++ {
			t.x[p][j] = false
			t.z[p][j] = false
		}
		t.z[p][q] = true
		outcome := rng.Intn(2)
		t.r[p] = outcome == 1
		return outcome
	}
	// Deterministic outcome: use the scratch row.
	scratch := 2 * n
	for j := 0; j < n; j++ {
		t.x[scratch][j] = false
		t.z[scratch][j] = false
	}
	t.r[scratch] = false
	for i := 0; i < n; i++ {
		if t.x[i][q] {
			t.rowsum(scratch, i+n)
		}
	}
	if t.r[scratch] {
		return 1
	}
	return 0
}

// ApplyGate dispatches a Clifford circuit gate.
func (t *Tableau) ApplyGate(g circuit.Gate, rng *rand.Rand, cbits []int) error {
	switch g.Kind {
	case circuit.KindI, circuit.KindBarrier:
	case circuit.KindH:
		t.H(g.Qubits[0])
	case circuit.KindX:
		t.X(g.Qubits[0])
	case circuit.KindY:
		t.Y(g.Qubits[0])
	case circuit.KindZ:
		t.Z(g.Qubits[0])
	case circuit.KindS:
		t.S(g.Qubits[0])
	case circuit.KindSdg:
		t.Sdg(g.Qubits[0])
	case circuit.KindCX:
		t.CX(g.Qubits[0], g.Qubits[1])
	case circuit.KindCZ:
		t.CZ(g.Qubits[0], g.Qubits[1])
	case circuit.KindSWAP:
		t.SWAP(g.Qubits[0], g.Qubits[1])
	case circuit.KindCY:
		t.Sdg(g.Qubits[1])
		t.CX(g.Qubits[0], g.Qubits[1])
		t.S(g.Qubits[1])
	case circuit.KindMeasure:
		out := t.Measure(g.Qubits[0], rng)
		if g.Cbit >= 0 && g.Cbit < len(cbits) {
			cbits[g.Cbit] = out
		}
	case circuit.KindReset:
		if t.Measure(g.Qubits[0], rng) == 1 {
			t.X(g.Qubits[0])
		}
	default:
		return fmt.Errorf("stabilizer: non-Clifford gate %s", g.Kind.Name())
	}
	return nil
}

// Simulate runs a Clifford circuit for the requested shots, sampling by
// re-measuring fresh tableau copies (mid-circuit measurement supported).
func Simulate(c *circuit.Circuit, shots int, rng *rand.Rand) (map[string]int, error) {
	if !c.IsClifford() {
		return nil, fmt.Errorf("stabilizer: circuit %q contains non-Clifford gates", c.Name)
	}
	if shots <= 0 {
		shots = 1024
	}
	// Run the unitary prefix once; per-shot work is only the measurements.
	base := New(c.NQubits)
	firstMeasure := len(c.Gates)
	for i, g := range c.Gates {
		if g.Kind == circuit.KindMeasure {
			firstMeasure = i
			break
		}
		if err := base.ApplyGate(g, rng, nil); err != nil {
			return nil, err
		}
	}
	counts := make(map[string]int)
	for s := 0; s < shots; s++ {
		t := base.Copy()
		bits := make([]int, c.NQubits)
		measured := false
		for _, g := range c.Gates[firstMeasure:] {
			if err := t.ApplyGate(g, rng, bits); err != nil {
				return nil, err
			}
			if g.Kind == circuit.KindMeasure {
				measured = true
			}
		}
		if !measured {
			// No measurements: measure everything (terminal sampling).
			for q := 0; q < c.NQubits; q++ {
				bits[q] = t.Measure(q, rng)
			}
		}
		key := make([]byte, c.NQubits)
		for q := 0; q < c.NQubits; q++ {
			key[c.NQubits-1-q] = byte('0' + bits[q])
		}
		counts[string(key)]++
	}
	return counts, nil
}
