package conformance

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/mps"
	"qfw/internal/pauli"
	"qfw/internal/stabilizer"
	"qfw/internal/statevec"
	"qfw/internal/tensornet"
)

func exactAmps(t *testing.T, c *circuit.Circuit) []complex128 {
	t.Helper()
	s, _ := statevec.RunFused(c, nil, 1, rand.New(rand.NewSource(1)))
	amps := append([]complex128(nil), s.Amp...)
	s.Release()
	return amps
}

func mpsAmps(t *testing.T, c *circuit.Circuit) []complex128 {
	t.Helper()
	cc, err := mps.CompileCircuit(c)
	if err != nil {
		t.Fatalf("mps compile: %v", err)
	}
	m, err := cc.Execute(nil, mps.Options{Cutoff: 1e-14})
	if err != nil {
		t.Fatalf("mps execute: %v", err)
	}
	defer m.Release()
	return m.Amplitudes()
}

func maxAmpDiff(a, b []complex128) float64 {
	mx := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

const ampTol = 1e-9

// TestAmplitudeConformance: statevector vs MPS vs tensor network on the
// randomized corpus, amplitude for amplitude.
func TestAmplitudeConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(9) // 2..10
		c := RandomCircuit(rng, n, 6+rng.Intn(4*n))
		ref := exactAmps(t, c)
		if d := maxAmpDiff(ref, mpsAmps(t, c)); d > ampTol {
			t.Fatalf("trial %d (n=%d): statevec vs mps diverge by %g\n%s", trial, n, d, c)
		}
		net, err := tensornet.Build(c)
		if err != nil {
			t.Fatalf("trial %d: tensornet build: %v", trial, err)
		}
		tnAmps, err := net.ContractAll()
		if err != nil {
			t.Fatalf("trial %d: tensornet contract: %v", trial, err)
		}
		if d := maxAmpDiff(ref, tnAmps); d > ampTol {
			t.Fatalf("trial %d (n=%d): statevec vs tensornet diverge by %g", trial, n, d)
		}
	}
}

// TestExpectationConformance: random Pauli Hamiltonians evaluated exactly
// on the statevector and MPS engines must agree to 1e-9.
func TestExpectationConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	ops := []pauli.Op{pauli.X, pauli.Y, pauli.Z}
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(7)
		c := RandomCircuit(rng, n, 5+rng.Intn(3*n))
		h := &pauli.Hamiltonian{NQubits: n}
		for term := 0; term < 6; term++ {
			support := map[int]pauli.Op{}
			for q := 0; q < n; q++ {
				if rng.Float64() < 0.4 {
					support[q] = ops[rng.Intn(len(ops))]
				}
			}
			if len(support) == 0 {
				support[rng.Intn(n)] = pauli.Z
			}
			h.Add(rng.NormFloat64(), support)
		}
		s, _ := statevec.RunFused(c, nil, 1, rand.New(rand.NewSource(1)))
		want := s.ExpectationHamiltonian(h)
		s.Release()
		cc, err := mps.CompileCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cc.Execute(nil, mps.Options{Cutoff: 1e-14})
		if err != nil {
			t.Fatal(err)
		}
		got := m.ExpectationHamiltonian(h)
		m.Release()
		if d := math.Abs(want - got); d > ampTol {
			t.Fatalf("trial %d (n=%d): <H> statevec %g vs mps %g (diff %g)", trial, n, want, got, d)
		}
	}
}

// chiSquare compares a sampled histogram against exact probabilities,
// pooling low-expectation bins. Returns the statistic and degrees of
// freedom.
func chiSquare(counts map[string]int, probs map[string]float64, shots int) (float64, int) {
	var stat float64
	dof := -1
	var restExp, restObs float64
	for key, p := range probs {
		exp := p * float64(shots)
		obs := float64(counts[key])
		if exp < 5 {
			restExp += exp
			restObs += obs
			continue
		}
		d := obs - exp
		stat += d * d / exp
		dof++
	}
	// Anything sampled outside the listed keys joins the pooled bin.
	var listed int
	for key := range probs {
		listed += counts[key]
	}
	restObs += float64(shots - listed)
	if restExp > 0 {
		d := restObs - restExp
		stat += d * d / restExp
		dof++
	}
	if dof < 1 {
		dof = 1
	}
	return stat, dof
}

// chiThreshold is a generous upper critical value: for dof d the chi-square
// mean is d with variance 2d, and d + 5*sqrt(2d) + 10 sits far beyond the
// p=1e-4 tail — fixed seeds keep the suite deterministic regardless.
func chiThreshold(dof int) float64 {
	return float64(dof) + 5*math.Sqrt(2*float64(dof)) + 10
}

func exactProbs(amps []complex128, n int) map[string]float64 {
	probs := make(map[string]float64, len(amps))
	for i, a := range amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 1e-15 {
			probs[statevec.FormatBits(i, n)] = p
		}
	}
	return probs
}

// TestSamplingConformance: each engine's sampler must draw histograms
// consistent with the exact distribution of the same circuit.
func TestSamplingConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	const shots = 4096
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(5) // 2..6: keep bin counts meaningful at 4096 shots
		c := RandomCircuit(rng, n, 5+rng.Intn(3*n))
		probs := exactProbs(exactAmps(t, c), n)

		s, _ := statevec.RunFused(c, nil, 1, rand.New(rand.NewSource(1)))
		svCounts := s.SampleCounts(shots, rand.New(rand.NewSource(42)))
		s.Release()
		if stat, dof := chiSquare(svCounts, probs, shots); stat > chiThreshold(dof) {
			t.Fatalf("trial %d: statevector sampler chi2 %g (dof %d)", trial, stat, dof)
		}

		cc, err := mps.CompileCircuit(c)
		if err != nil {
			t.Fatal(err)
		}
		m, err := cc.Execute(nil, mps.Options{Cutoff: 1e-14})
		if err != nil {
			t.Fatal(err)
		}
		mpsCounts := m.Sample(shots, rand.New(rand.NewSource(43)))
		m.Release()
		if stat, dof := chiSquare(mpsCounts, probs, shots); stat > chiThreshold(dof) {
			t.Fatalf("trial %d: mps sampler chi2 %g (dof %d)", trial, stat, dof)
		}

		tnCounts, err := tensornet.Simulate(c, shots, rand.New(rand.NewSource(44)))
		if err != nil {
			t.Fatal(err)
		}
		if stat, dof := chiSquare(tnCounts, probs, shots); stat > chiThreshold(dof) {
			t.Fatalf("trial %d: tensornet sampler chi2 %g (dof %d)", trial, stat, dof)
		}
	}
}

// TestCliffordConformance: on the Clifford subset all four engines answer —
// the stabilizer tableau joins via its sampled histogram (it has no
// amplitude access), checked by chi-square against the exact distribution;
// statevec vs mps amplitudes stay exact.
func TestCliffordConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	const shots = 4096
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(5)
		c := RandomClifford(rng, n, 4+rng.Intn(4*n))
		if !c.IsClifford() {
			t.Fatalf("generator emitted a non-Clifford gate")
		}
		ref := exactAmps(t, c)
		if d := maxAmpDiff(ref, mpsAmps(t, c)); d > ampTol {
			t.Fatalf("trial %d: clifford statevec vs mps diverge by %g", trial, d)
		}
		probs := exactProbs(ref, n)
		measured := c.Copy()
		measured.MeasureAll()
		stCounts, err := stabilizer.Simulate(measured, shots, rand.New(rand.NewSource(45)))
		if err != nil {
			t.Fatal(err)
		}
		if stat, dof := chiSquare(stCounts, probs, shots); stat > chiThreshold(dof) {
			t.Fatalf("trial %d: stabilizer sampler chi2 %g (dof %d)", trial, stat, dof)
		}
	}
}
