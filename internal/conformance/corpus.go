// Package conformance holds the cross-engine differential test corpus and
// suite: seeded randomized circuits over the shared gate set, executed on
// every local simulation engine and compared against the dense statevector
// reference. The generators are exported so other packages can replay the
// exact corpus — the cost-model router's oracle regression and the
// peak-bond estimator validation both reuse it.
package conformance

import (
	"math"
	"math/rand"

	"qfw/internal/circuit"
)

// RandomCircuit draws a seeded circuit over the full shared gate set
// (single-qubit Cliffords and rotations, the two-qubit set including
// long-range placements, and CCX when width allows).
func RandomCircuit(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	oneQ := []circuit.Kind{
		circuit.KindH, circuit.KindX, circuit.KindY, circuit.KindZ,
		circuit.KindS, circuit.KindSdg, circuit.KindT, circuit.KindTdg,
		circuit.KindSX, circuit.KindRX, circuit.KindRY, circuit.KindRZ, circuit.KindP,
	}
	twoQ := []circuit.Kind{
		circuit.KindCX, circuit.KindCY, circuit.KindCZ,
		circuit.KindCRX, circuit.KindCRY, circuit.KindCRZ, circuit.KindCP,
		circuit.KindSWAP, circuit.KindRZZ, circuit.KindRXX,
	}
	pick := func(exclude []int) int {
		for {
			q := rng.Intn(n)
			used := false
			for _, e := range exclude {
				if e == q {
					used = true
				}
			}
			if !used {
				return q
			}
		}
	}
	for i := 0; i < gates; i++ {
		r := rng.Float64()
		switch {
		case n >= 3 && r < 0.07:
			a := pick(nil)
			b := pick([]int{a})
			c2 := pick([]int{a, b})
			c.CCX(a, b, c2)
		case n >= 2 && r < 0.5:
			k := twoQ[rng.Intn(len(twoQ))]
			a := pick(nil)
			b := pick([]int{a})
			g := circuit.Gate{Kind: k, Qubits: []int{a, b}}
			if k.NumParams() == 1 {
				g.Params = []circuit.Param{circuit.Bound(2 * math.Pi * rng.Float64())}
			}
			c.Append(g)
		default:
			k := oneQ[rng.Intn(len(oneQ))]
			g := circuit.Gate{Kind: k, Qubits: []int{rng.Intn(n)}}
			if k.NumParams() == 1 {
				g.Params = []circuit.Param{circuit.Bound(2 * math.Pi * rng.Float64())}
			}
			c.Append(g)
		}
	}
	return c
}

// RandomClifford draws a seeded circuit over the stabilizer engine's
// native gate set.
func RandomClifford(rng *rand.Rand, n, gates int) *circuit.Circuit {
	c := circuit.New(n)
	oneQ := []circuit.Kind{
		circuit.KindH, circuit.KindX, circuit.KindY, circuit.KindZ,
		circuit.KindS, circuit.KindSdg,
	}
	twoQ := []circuit.Kind{circuit.KindCX, circuit.KindCZ, circuit.KindSWAP}
	for i := 0; i < gates; i++ {
		if n >= 2 && rng.Float64() < 0.45 {
			a := rng.Intn(n)
			b := rng.Intn(n)
			for b == a {
				b = rng.Intn(n)
			}
			c.Append(circuit.Gate{Kind: twoQ[rng.Intn(len(twoQ))], Qubits: []int{a, b}})
		} else {
			c.Append(circuit.Gate{Kind: oneQ[rng.Intn(len(oneQ))], Qubits: []int{rng.Intn(n)}})
		}
	}
	return c
}
