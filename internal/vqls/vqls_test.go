package vqls

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"qfw/internal/linalg"
	"qfw/internal/qaoa"
	"qfw/internal/statevec"
)

func TestAnsatzShape(t *testing.T) {
	c := Ansatz(4, 2)
	if len(c.ParamNames()) != NumParams(4, 2) {
		t.Fatalf("params %d, want %d", len(c.ParamNames()), NumParams(4, 2))
	}
	ops := c.CountOps()
	if ops["ry"] != 12 || ops["cz"] != 6 {
		t.Fatalf("ops %v", ops)
	}
}

func TestOperatorsAreHermitianExpansions(t *testing.T) {
	p := IsingA(3, 0.4, 0.3, 1.5)
	normal := normalOperator(p.A)
	if len(normal.Paulis) == 0 {
		t.Fatal("empty A†A expansion")
	}
	proj := projectedOperator(p.A)
	if len(proj.Paulis) == 0 {
		t.Fatal("empty A†|b><b|A expansion")
	}
	// Cross-check: on a random state, <M> and <B> from the Pauli expansion
	// must match the dense-matrix evaluation.
	rng := rand.New(rand.NewSource(1))
	state := statevec.NewState(3)
	state.Apply1Q([2][2]complex128{{complex(rng.Float64(), 0), complex(rng.Float64(), 0.2)}, {0, 1}}, 0) // arbitrary non-unitary is fine for a linear check? no — keep unitary:
	_ = state
	s2 := statevec.NewState(3)
	// Random product-ish state via rotations.
	for q := 0; q < 3; q++ {
		s2.Apply1Q(ry(rng.NormFloat64()), q)
	}
	s2.ApplyControlled1Q([2][2]complex128{{0, 1}, {1, 0}}, []int{0}, 1)

	a := p.A.Matrix()
	m := linalg.MatMul(a.Dagger(), a)
	hvec := linalg.MatVec(m, s2.Amp)
	var want complex128
	for i := range hvec {
		want += cmplx.Conj(s2.Amp[i]) * hvec[i]
	}
	got := 0.0
	for _, term := range normal.Paulis {
		got += term.Coeff * pauliExpect(s2, term.Ops)
	}
	if math.Abs(got-real(want)) > 1e-8 {
		t.Fatalf("A†A expansion: %g vs dense %g", got, real(want))
	}
}

func ry(theta float64) [2][2]complex128 {
	c, s := math.Cos(theta/2), math.Sin(theta/2)
	return [2][2]complex128{{complex(c, 0), complex(-s, 0)}, {complex(s, 0), complex(c, 0)}}
}

// pauliExpect evaluates <s|P|s> for an ops-key string.
func pauliExpect(s *statevec.State, ops string) float64 {
	t := s.Copy()
	for q := 0; q < len(ops); q++ {
		switch ops[q] {
		case 'X':
			t.Apply1Q([2][2]complex128{{0, 1}, {1, 0}}, q)
		case 'Y':
			t.Apply1Q([2][2]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}}, q)
		case 'Z':
			t.Apply1Q([2][2]complex128{{1, 0}, {0, -1}}, q)
		}
	}
	return real(s.InnerProduct(t))
}

func TestSolveConvergesToInverse(t *testing.T) {
	// Well-conditioned A: the trained state must align with A^{-1}|b>.
	p := IsingA(3, 0.25, 0.2, 1.0)
	res, err := Solve(p, qaoa.LocalRunner{}, Options{Layers: 2, MaxEvals: 250, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 0.05 {
		t.Fatalf("VQLS cost %g did not converge", res.Cost)
	}
	// Verify against the classical solution.
	bound := SolutionState(p, res, 2)
	s, _ := statevec.RunCircuit(bound, 1, rand.New(rand.NewSource(0)))
	b := make([]complex128, 8)
	for i := range b {
		b[i] = complex(1/math.Sqrt(8), 0)
	}
	x := linalg.SolveHermitian(p.A.Matrix(), b)
	// Normalize x and compare |<x|psi>|.
	var nrm float64
	for _, v := range x {
		nrm += real(v)*real(v) + imag(v)*imag(v)
	}
	nrm = math.Sqrt(nrm)
	var overlap complex128
	for i := range x {
		overlap += cmplx.Conj(x[i]/complex(nrm, 0)) * s.Amp[i]
	}
	if fid := cmplx.Abs(overlap); fid < 0.97 {
		t.Fatalf("solution fidelity %g < 0.97 (cost %g)", fid, res.Cost)
	}
}

func TestSolveRejectsLargeProblems(t *testing.T) {
	p := IsingA(11, 0.1, 0.1, 1)
	if _, err := Solve(p, qaoa.LocalRunner{}, Options{}); err == nil {
		t.Fatal("11-qubit expansion accepted")
	}
}
