package vqls

import (
	"fmt"
	"math"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/pauli"
	"qfw/internal/qaoa"
	"qfw/internal/statevec"
)

// TestVQLSAnsatzGradientCorrectness checks adjoint and parameter-shift
// gradients of the hardware-efficient VQLS ansatz against finite
// differences (1e-7) and each other (1e-9), using the solver's own A†A
// observable.
func TestVQLSAnsatzGradientCorrectness(t *testing.T) {
	p := IsingA(4, 0.4, 0.3, 1.0)
	ansatz := Ansatz(4, 2)
	normal := normalOperator(p.A)
	ham := &pauli.Hamiltonian{NQubits: 4}
	for _, term := range normal.Paulis {
		ops := map[int]pauli.Op{}
		for q := 0; q < len(term.Ops); q++ {
			switch term.Ops[q] {
			case 'X':
				ops[q] = pauli.X
			case 'Y':
				ops[q] = pauli.Y
			case 'Z':
				ops[q] = pauli.Z
			}
		}
		ham.Add(term.Coeff, ops)
	}
	obs := statevec.GradObs{Ham: ham}
	binding := map[string]float64{}
	for i := 0; i < NumParams(4, 2); i++ {
		binding[fmt.Sprintf("t%d", i)] = 0.1*float64(i) - 0.5
	}
	plan := circuit.PlanFusionGrad(ansatz)
	aval, agrad, err := statevec.GradientAdjoint(plan, binding, obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	splan, err := circuit.PlanParamShift(ansatz)
	if err != nil {
		t.Fatal(err)
	}
	sval, sgrad, err := statevec.GradientParamShift(splan, binding, obs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(aval-sval) > 1e-9 {
		t.Fatalf("value: adjoint %.15g vs shift %.15g", aval, sval)
	}
	value := func(b map[string]float64) float64 {
		s, _ := statevec.RunFused(ansatz.Bind(b), nil, 1, nil)
		defer s.Release()
		return s.ExpectationHamiltonian(ham)
	}
	const eps = 1e-5
	for i, name := range plan.Params() {
		if math.Abs(agrad[i]-sgrad[i]) > 1e-9 {
			t.Errorf("param %s: adjoint %.15g vs shift %.15g", name, agrad[i], sgrad[i])
		}
		up := map[string]float64{}
		dn := map[string]float64{}
		for k, v := range binding {
			up[k], dn[k] = v, v
		}
		up[name] += eps
		dn[name] -= eps
		fd := (value(up) - value(dn)) / (2 * eps)
		if math.Abs(agrad[i]-fd) > 1e-7 {
			t.Errorf("param %s: adjoint %.12g vs finite diff %.12g", name, agrad[i], fd)
		}
	}
}

// TestVQLSGradientSolveBeatsBudget checks the adjoint-driven VQLS loop
// reaches at least the Nelder-Mead cost on a smaller circuit-equivalent
// budget — the loop-level acceptance property of the gradient engine.
func TestVQLSGradientSolveBeatsBudget(t *testing.T) {
	p := IsingA(4, 0.35, 0.25, 1.0)
	runner := qaoa.LocalRunner{}
	nm, err := Solve(p, runner, Options{Layers: 2, MaxEvals: 300, Seed: 3, Optimizer: "neldermead"})
	if err != nil {
		t.Fatal(err)
	}
	grad, err := Solve(p, runner, Options{Layers: 2, MaxEvals: 300, Seed: 3, Optimizer: "adam", Target: &nm.Cost})
	if err != nil {
		t.Fatal(err)
	}
	if grad.Cost > nm.Cost+1e-9 {
		t.Fatalf("gradient cost %.6f worse than Nelder-Mead %.6f", grad.Cost, nm.Cost)
	}
	if grad.Evals >= nm.Evals {
		t.Fatalf("gradient loop spent %d evals, Nelder-Mead %d — no win", grad.Evals, nm.Evals)
	}
	// Auto strategy on a gradient-capable runner must also go the
	// gradient way and converge.
	auto, err := Solve(p, runner, Options{Layers: 2, MaxEvals: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Cost > 0.2 {
		t.Fatalf("auto cost %.4f did not converge", auto.Cost)
	}
	if _, err := Solve(p, nonGradRunner{runner}, Options{Layers: 1, MaxEvals: 40, Seed: 3, Optimizer: "adam"}); err == nil {
		t.Fatal("explicit adam on a non-gradient runner must fail")
	}
	// The gd path's Armijo ladder must ride the value-only batch hook and
	// stay inside the circuit-equivalent budget.
	gd, err := Solve(p, runner, Options{Layers: 2, MaxEvals: 280, Seed: 3, Optimizer: "gd"})
	if err != nil {
		t.Fatal(err)
	}
	if gd.Evals > 280 {
		t.Fatalf("gd blew the circuit-equivalent budget: %d > 280", gd.Evals)
	}
	if gd.Cost > 0.25 {
		t.Fatalf("gd cost %.4f did not converge", gd.Cost)
	}
}

// nonGradRunner hides LocalRunner's gradient capability.
type nonGradRunner struct{ inner qaoa.LocalRunner }

func (n nonGradRunner) Run(c *circuit.Circuit, opts core.RunOptions) (*core.Result, error) {
	return n.inner.Run(c, opts)
}
