// Package vqls implements the Variational Quantum Linear Solver
// (Bravo-Prieto et al.), one of the applications the paper's Fig. 1 lists
// on top of QFw. Given a Hermitian operator A = Σ_l c_l P_l expressed as a
// Pauli sum and a target state |b>, VQLS trains a parameterized ansatz
// |ψ(θ)> to minimize
//
//	C(θ) = 1 - |<b|A|ψ(θ)>|² / <ψ(θ)|A†A|ψ(θ)>,
//
// which vanishes exactly when A|ψ> ∝ |b>, i.e. |ψ> ∝ A⁻¹|b>.
//
// Both expectation values are evaluated as Pauli-sum observables through
// the QFw frontend (the general-Pauli extension of the Observable wire
// format), so the same VQLS code runs on any local simulator backend.
// With |b> = |+>^n the projector |b><b| expands into 2^n X-strings, so the
// method is exponential in the cost *expansion* — fine at the small sizes
// variational linear solvers target on NISQ devices.
package vqls

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/optimize"
	"qfw/internal/pauli"
	"qfw/internal/qaoa"
)

// Problem is a VQLS instance: solve A|x> ∝ |b> with |b> = |+>^n.
type Problem struct {
	A *pauli.Hamiltonian
}

// IsingA builds a well-conditioned Ising-type test operator
// A = η·I + Σ J Z_i Z_{i+1} + hx Σ X_i (η shifts the spectrum positive).
func IsingA(n int, j, hx, eta float64) *Problem {
	h := &pauli.Hamiltonian{NQubits: n}
	h.Add(eta, map[int]pauli.Op{})
	for i := 0; i+1 < n; i++ {
		h.Add(j, map[int]pauli.Op{i: pauli.Z, i + 1: pauli.Z})
	}
	for i := 0; i < n; i++ {
		h.Add(hx, map[int]pauli.Op{i: pauli.X})
	}
	return &Problem{A: h}
}

// Ansatz builds the hardware-efficient trial circuit: `layers` repetitions
// of per-qubit RY rotations followed by a CZ entangling chain, with
// symbolic parameters t0, t1, ...
func Ansatz(n, layers int) *circuit.Circuit {
	c := circuit.New(n)
	c.Name = fmt.Sprintf("vqls-ansatz-%d-l%d", n, layers)
	idx := 0
	for l := 0; l < layers; l++ {
		for q := 0; q < n; q++ {
			c.RY(q, circuit.Sym(fmt.Sprintf("t%d", idx), 1))
			idx++
		}
		for q := 0; q+1 < n; q++ {
			c.CZ(q, q+1)
		}
	}
	for q := 0; q < n; q++ {
		c.RY(q, circuit.Sym(fmt.Sprintf("t%d", idx), 1))
		idx++
	}
	return c
}

// NumParams returns the ansatz parameter count for n qubits and `layers`.
func NumParams(n, layers int) int { return n * (layers + 1) }

// normalOperator expands A†A into a merged real Pauli sum.
func normalOperator(a *pauli.Hamiltonian) *core.Observable {
	acc := map[string]complex128{}
	order := []string{}
	for _, l := range a.Terms {
		for _, r := range a.Terms {
			prod, phase := pauli.Mul(l, r)
			key := prod.OpsKey()
			if _, ok := acc[key]; !ok {
				order = append(order, key)
			}
			acc[key] += phase * complex(prod.Coeff, 0)
		}
	}
	return pauliMapToObservable(acc, order)
}

// projectedOperator expands B = A†|b><b|A with |b> = |+>^n:
// |b><b| = 2^{-n} Σ_{S ⊆ [n]} X_S.
func projectedOperator(a *pauli.Hamiltonian) *core.Observable {
	n := a.NQubits
	scale := complex(math.Pow(2, -float64(n)), 0)
	acc := map[string]complex128{}
	order := []string{}
	for mask := 0; mask < 1<<uint(n); mask++ {
		xs := pauli.String{Coeff: 1, Ops: make([]pauli.Op, n)}
		for q := 0; q < n; q++ {
			if mask&(1<<uint(q)) != 0 {
				xs.Ops[q] = pauli.X
			} else {
				xs.Ops[q] = pauli.I
			}
		}
		for _, l := range a.Terms {
			lx, ph1 := pauli.Mul(l, xs)
			for _, r := range a.Terms {
				prod, ph2 := pauli.Mul(lx, r)
				key := prod.OpsKey()
				if _, ok := acc[key]; !ok {
					order = append(order, key)
				}
				acc[key] += scale * ph1 * ph2 * complex(prod.Coeff, 0)
			}
		}
	}
	return pauliMapToObservable(acc, order)
}

// pauliMapToObservable drops numerically-zero and imaginary residue terms
// (both operators are Hermitian, so imaginary parts cancel) and packs the
// rest into the wire format.
func pauliMapToObservable(acc map[string]complex128, order []string) *core.Observable {
	obs := &core.Observable{}
	for _, key := range order {
		v := acc[key]
		if cmplx.Abs(v) < 1e-12 {
			continue
		}
		obs.Paulis = append(obs.Paulis, core.PauliTerm{Coeff: real(v), Ops: key})
	}
	return obs
}

// Options tune a VQLS solve.
type Options struct {
	Layers   int   // ansatz depth, default 2
	MaxEvals int   // optimizer budget in circuit-equivalent evaluations, default 150
	Seed     int64 // default 1
	Shots    int   // forwarded to the backend (observables are exact on local sims)
	Run      core.RunOptions

	// Optimizer selects the classical update rule: "auto" (default — Adam
	// over analytic adjoint gradients when the runner differentiates,
	// Nelder-Mead otherwise), "adam", "gd", or "neldermead". The VQLS cost
	// is a quotient of two observables, so one gradient step costs two
	// adjoint evaluations (numerator and denominator) combined through the
	// quotient rule.
	Optimizer string

	// LR overrides the gradient optimizer's step size (default 0.1).
	LR float64

	// Target, when non-nil, stops the optimization once the cost reaches it
	// (the equal-convergence-target mode of the gradient ablation). Honored
	// by the adam, gd, and neldermead paths.
	Target *float64
}

// Result summarizes a VQLS solve.
type Result struct {
	Params []float64
	Cost   float64 // final C(θ) in [0, 1]
	Evals  int     // circuit-equivalent evaluations spent
}

// Solve trains the ansatz against the runner (a QFw frontend or local
// engine) and returns the optimized parameters and final cost.
func Solve(p *Problem, runner qaoa.Runner, opts Options) (*Result, error) {
	if p.A.NQubits > 10 {
		return nil, fmt.Errorf("vqls: cost expansion is exponential; %d qubits exceeds the supported 10", p.A.NQubits)
	}
	if opts.Layers <= 0 {
		opts.Layers = 2
	}
	if opts.MaxEvals <= 0 {
		opts.MaxEvals = 150
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if opts.Shots <= 0 {
		opts.Shots = 128
	}
	n := p.A.NQubits
	ansatz := Ansatz(n, opts.Layers)
	normal := normalOperator(p.A)
	projected := projectedOperator(p.A)

	evals := 0
	var firstErr error
	combine := func(num, den float64) float64 {
		if den <= 1e-12 {
			return 1
		}
		c := 1 - num/den
		if c < 0 {
			c = 0
		}
		return c
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	x0 := make([]float64, NumParams(n, opts.Layers))
	for i := range x0 {
		x0[i] = rng.NormFloat64() * 0.3
	}
	// MaxEvals is a circuit-equivalent budget and every Nelder-Mead theta
	// evaluation costs two observable submissions, so the simplex gets half
	// the point count (at least one — zero would fall back to the internal
	// 200-evaluation default and blow the budget).
	nmEvals := opts.MaxEvals / 2
	if nmEvals < 1 {
		nmEvals = 1
	}
	nmOpts := optimize.NMOptions{MaxEvals: nmEvals, InitStep: 0.6}
	if opts.Target != nil {
		nmOpts.Target = *opts.Target
		nmOpts.HasTarget = true
	}
	var best []float64
	var bestC float64
	gr, hasGR := runner.(qaoa.GradientRunner)
	useGrad := hasGR && gr.SupportsGradients()
	switch opts.Optimizer {
	case "", "auto":
	case "adam", "gd":
		if !useGrad {
			return nil, fmt.Errorf("vqls: optimizer %q needs a gradient-capable runner", opts.Optimizer)
		}
	case "neldermead", "nm":
		useGrad = false
	default:
		return nil, fmt.Errorf("vqls: unknown optimizer %q", opts.Optimizer)
	}
	if useGrad {
		best, bestC = solveGradient(runner, gr, ansatz, projected, normal, x0, &opts, &evals, &firstErr, combine)
	} else if br, ok := runner.(qaoa.BatchRunner); ok {
		// Batched path: a candidate set of M thetas costs two RunBatch
		// submissions (numerator and denominator observables) instead of 2M
		// individual circuit submissions.
		costBatch := func(thetas [][]float64) []float64 {
			out := make([]float64, len(thetas))
			evals += 2 * len(thetas) // two observable submissions per theta
			if firstErr != nil {
				for i := range out {
					out[i] = math.Inf(1)
				}
				return out
			}
			bindings := make([]core.Bindings, len(thetas))
			for i, theta := range thetas {
				b := core.Bindings{}
				for k, v := range theta {
					b[fmt.Sprintf("t%d", k)] = v
				}
				bindings[i] = b
			}
			nums, err := expectBatch(br, ansatz, bindings, projected, opts)
			var dens []float64
			if err == nil {
				dens, err = expectBatch(br, ansatz, bindings, normal, opts)
			}
			if err != nil {
				firstErr = err
				for i := range out {
					out[i] = math.Inf(1)
				}
				return out
			}
			for i := range out {
				out[i] = combine(nums[i], dens[i])
			}
			return out
		}
		best, bestC, _ = optimize.NelderMeadBatch(costBatch, x0, nmOpts)
	} else {
		cost := func(theta []float64) float64 {
			if firstErr != nil {
				return math.Inf(1)
			}
			evals += 2 // two observable submissions per theta
			binding := map[string]float64{}
			for i, v := range theta {
				binding[fmt.Sprintf("t%d", i)] = v
			}
			bound := ansatz.Bind(binding)
			num, err := expect(runner, bound, projected, opts)
			if err != nil {
				firstErr = err
				return math.Inf(1)
			}
			den, err := expect(runner, bound, normal, opts)
			if err != nil {
				firstErr = err
				return math.Inf(1)
			}
			return combine(num, den)
		}
		best, bestC, _ = optimize.NelderMead(cost, x0, nmOpts)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &Result{Params: best, Cost: bestC, Evals: evals}, nil
}

// vqlsGradCost is the circuit-equivalent price of one VQLS gradient point:
// two adjoint evaluations (numerator and denominator observables) at three
// circuit-equivalents each.
const vqlsGradCost = 6

// solveGradient runs the gradient-driven VQLS loop: per candidate θ, the
// runner's adjoint capability returns value and gradient of both quadratic
// forms in two RunGradient submissions, and the quotient rule combines them
// into the cost gradient:
//
//	C = 1 − num/den,  ∇C = (num·∇den − ∇num·den) / den².
func solveGradient(runner qaoa.Runner, gr qaoa.GradientRunner, ansatz *circuit.Circuit, projected, normal *core.Observable,
	x0 []float64, opts *Options, evals *int, firstErr *error, combine func(num, den float64) float64) ([]float64, float64) {
	nParams := len(x0)
	sorted := ansatz.ParamNames()
	fidx := make([]int, nParams)
	pos := map[string]int{}
	for i, name := range sorted {
		pos[name] = i
	}
	for i := 0; i < nParams; i++ {
		fidx[i] = pos[fmt.Sprintf("t%d", i)]
	}
	fail := func(xs [][]float64, err error) ([]float64, [][]float64) {
		if *firstErr == nil && err != nil {
			*firstErr = err
		}
		vals := make([]float64, len(xs))
		grads := make([][]float64, len(xs))
		for i := range xs {
			vals[i] = math.Inf(1)
			grads[i] = make([]float64, nParams)
		}
		return vals, grads
	}
	gradObj := func(xs [][]float64) ([]float64, [][]float64) {
		if *firstErr != nil {
			return fail(xs, nil)
		}
		*evals += vqlsGradCost * len(xs)
		bindings := make([]core.Bindings, len(xs))
		for i, x := range xs {
			b := core.Bindings{}
			for k, v := range x {
				b[fmt.Sprintf("t%d", k)] = v
			}
			bindings[i] = b
		}
		runOpts := opts.Run
		runOpts.Shots = opts.Shots
		runOpts.Seed = opts.Seed
		runOpts.Observable = projected
		nums, err := gr.RunGradient(ansatz, bindings, runOpts)
		if err != nil {
			return fail(xs, err)
		}
		runOpts.Observable = normal
		dens, err := gr.RunGradient(ansatz, bindings, runOpts)
		if err != nil {
			return fail(xs, err)
		}
		vals := make([]float64, len(xs))
		grads := make([][]float64, len(xs))
		for i := range xs {
			num, den := nums[i].Value, dens[i].Value
			vals[i] = combine(num, den)
			g := make([]float64, nParams)
			if den > 1e-12 {
				for j, at := range fidx {
					g[j] = (num*dens[i].Grad[at] - nums[i].Grad[at]*den) / (den * den)
				}
			}
			grads[i] = g
		}
		return vals, grads
	}
	gopts := optimize.GradOptions{LR: opts.LR}
	if opts.Target != nil {
		gopts.Target = *opts.Target
		gopts.HasTarget = true
	}
	perIter := vqlsGradCost
	useGD := opts.Optimizer == "gd"
	if useGD {
		if br, ok := runner.(qaoa.BatchRunner); ok {
			// Value-only Armijo ladder: two batched observable submissions
			// per candidate set instead of full adjoint sweeps.
			gopts.Line = func(xs [][]float64) []float64 {
				out := make([]float64, len(xs))
				if *firstErr != nil {
					for i := range out {
						out[i] = math.Inf(1)
					}
					return out
				}
				*evals += 2 * len(xs)
				bindings := make([]core.Bindings, len(xs))
				for i, x := range xs {
					b := core.Bindings{}
					for k, v := range x {
						b[fmt.Sprintf("t%d", k)] = v
					}
					bindings[i] = b
				}
				nums, err := expectBatch(br, ansatz, bindings, projected, *opts)
				var dens []float64
				if err == nil {
					dens, err = expectBatch(br, ansatz, bindings, normal, *opts)
				}
				if err != nil {
					if *firstErr == nil {
						*firstErr = err
					}
					for i := range out {
						out[i] = math.Inf(1)
					}
					return out
				}
				for i := range out {
					out[i] = combine(nums[i], dens[i])
				}
				return out
			}
			perIter += 2 * 4 // four-point ladder, two observables each
		} else {
			// No batch path: GradientDescent falls back to the gradient
			// hook for the ladder, so cost it honestly.
			perIter += vqlsGradCost * 4
		}
	}
	gopts.MaxIters = opts.MaxEvals / perIter
	if gopts.MaxIters < 1 {
		gopts.MaxIters = 1
	}
	if useGD {
		best, bestC, _ := optimize.GradientDescent(gradObj, x0, gopts)
		return best, bestC
	}
	best, bestC, _ := optimize.Adam(gradObj, x0, gopts)
	return best, bestC
}

// expectBatch evaluates one observable over a whole candidate set through a
// single batched submission and returns the per-element expectations.
func expectBatch(br qaoa.BatchRunner, ansatz *circuit.Circuit, bindings []core.Bindings, obs *core.Observable, opts Options) ([]float64, error) {
	runOpts := opts.Run
	runOpts.Shots = opts.Shots
	runOpts.Seed = opts.Seed
	runOpts.Observable = obs
	results, err := br.RunBatch(ansatz, bindings, runOpts)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(bindings))
	for i, res := range results {
		if res == nil || res.ExpVal == nil {
			return nil, fmt.Errorf("vqls: backend returned no expectation value (general-Pauli observables need a local simulator backend)")
		}
		out[i] = *res.ExpVal
	}
	return out, nil
}

// expect runs the bound circuit with the observable attached and returns
// the backend's expectation value.
func expect(runner qaoa.Runner, bound *circuit.Circuit, obs *core.Observable, opts Options) (float64, error) {
	runOpts := opts.Run
	runOpts.Shots = opts.Shots
	runOpts.Seed = opts.Seed
	runOpts.Observable = obs
	res, err := runner.Run(bound, runOpts)
	if err != nil {
		return 0, err
	}
	if res.ExpVal == nil {
		return 0, fmt.Errorf("vqls: backend returned no expectation value (general-Pauli observables need a local simulator backend)")
	}
	return *res.ExpVal, nil
}

// SolutionState materializes the optimized ansatz for verification.
func SolutionState(p *Problem, res *Result, layers int) *circuit.Circuit {
	binding := map[string]float64{}
	for i, v := range res.Params {
		binding[fmt.Sprintf("t%d", i)] = v
	}
	return Ansatz(p.A.NQubits, layers).Bind(binding)
}
