package linalg

import (
	"math"
	"math/cmplx"
	"sort"
)

// EigenHermitian diagonalizes a Hermitian matrix A using the cyclic complex
// Jacobi method. It returns the eigenvalues in ascending order and a unitary
// matrix V whose columns are the corresponding eigenvectors, so that
// A = V diag(vals) V†.
func EigenHermitian(a *Matrix) (vals []float64, v *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: EigenHermitian needs a square matrix")
	}
	n := a.Rows
	h := a.Copy()
	v = Identity(n)
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				off += cmplx.Abs(h.At(p, q)) * cmplx.Abs(h.At(p, q))
			}
		}
		if off < 1e-28*float64(n*n) {
			break
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(h, v, p, q)
			}
		}
	}
	vals = make([]float64, n)
	for i := range vals {
		vals[i] = real(h.At(i, i))
	}
	// Sort eigenpairs ascending by eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] < vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedV := New(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedV.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedV
}

// jacobiRotate applies one complex Jacobi rotation zeroing h[p][q], updating
// both h (as J† h J) and the eigenvector accumulator v (as v J).
func jacobiRotate(h, v *Matrix, p, q int) {
	apq := h.At(p, q)
	r := cmplx.Abs(apq)
	if r < 1e-300 {
		return
	}
	app := real(h.At(p, p))
	aqq := real(h.At(q, q))
	tau := (aqq - app) / (2 * r)
	var t float64
	if tau >= 0 {
		t = 1 / (tau + math.Sqrt(1+tau*tau))
	} else {
		t = -1 / (-tau + math.Sqrt(1+tau*tau))
	}
	c := 1 / math.Sqrt(1+t*t)
	s := t * c
	phase := apq / complex(r, 0) // e^{iφ}
	cs := complex(c, 0)
	sn := complex(s, 0)
	n := h.Rows
	// Column update: col_p' = c col_p - s e^{-iφ} col_q ; col_q' = s e^{iφ} col_p + c col_q.
	for k := 0; k < n; k++ {
		hp := h.At(k, p)
		hq := h.At(k, q)
		h.Set(k, p, cs*hp-sn*cmplx.Conj(phase)*hq)
		h.Set(k, q, sn*phase*hp+cs*hq)
		vp := v.At(k, p)
		vq := v.At(k, q)
		v.Set(k, p, cs*vp-sn*cmplx.Conj(phase)*vq)
		v.Set(k, q, sn*phase*vp+cs*vq)
	}
	// Row update: row_p' = c row_p - s e^{iφ} row_q ; row_q' = s e^{-iφ} row_p + c row_q.
	for l := 0; l < n; l++ {
		hp := h.At(p, l)
		hq := h.At(q, l)
		h.Set(p, l, cs*hp-sn*phase*hq)
		h.Set(q, l, sn*cmplx.Conj(phase)*hp+cs*hq)
	}
	// Clean up rounding on the now (near-)zero pair and force real diagonal.
	h.Set(p, q, 0)
	h.Set(q, p, 0)
	h.Set(p, p, complex(real(h.At(p, p)), 0))
	h.Set(q, q, complex(real(h.At(q, q)), 0))
}

// SVD computes a thin singular value decomposition A = U diag(s) V†, with
// singular values returned in descending order. U is m x k and V is n x k
// where k = min(m, n). The implementation diagonalizes the smaller Gram
// matrix, which is accurate to ~sqrt(eps) for the smallest singular values —
// ample for MPS truncation and test tolerances used in this repository.
func SVD(a *Matrix) (u *Matrix, s []float64, v *Matrix) {
	m, n := a.Rows, a.Cols
	if m >= n {
		// Gram = A† A (n x n), eigen gives V; U = A V / σ.
		gram := MatMul(a.Dagger(), a)
		vals, vecs := EigenHermitian(gram)
		k := n
		s = make([]float64, k)
		v = New(n, k)
		for i := 0; i < k; i++ {
			// eigenvalues ascending -> take from the top for descending σ
			src := k - 1 - i
			lam := vals[src]
			if lam < 0 {
				lam = 0
			}
			s[i] = math.Sqrt(lam)
			for r := 0; r < n; r++ {
				v.Set(r, i, vecs.At(r, src))
			}
		}
		u = New(m, k)
		for i := 0; i < k; i++ {
			if s[i] > 1e-150 {
				inv := complex(1/s[i], 0)
				for r := 0; r < m; r++ {
					var acc complex128
					for c := 0; c < n; c++ {
						acc += a.At(r, c) * v.At(c, i)
					}
					u.Set(r, i, acc*inv)
				}
			} else {
				fillOrthoColumn(u, i)
			}
		}
		return u, s, v
	}
	// m < n: decompose A† = U' s V'† then A = V' s U'†.
	ut, st, vt := SVD(a.Dagger())
	return vt, st, ut
}

// fillOrthoColumn replaces column i of u with a unit vector orthogonal to
// columns 0..i-1 (used for zero singular values, where any completion works).
func fillOrthoColumn(u *Matrix, i int) {
	m := u.Rows
	for seed := 0; seed < m; seed++ {
		// Try basis vector e_seed, orthogonalize against previous columns.
		col := make([]complex128, m)
		col[seed] = 1
		for k := 0; k < i; k++ {
			var dot complex128
			for r := 0; r < m; r++ {
				dot += cmplx.Conj(u.At(r, k)) * col[r]
			}
			for r := 0; r < m; r++ {
				col[r] -= dot * u.At(r, k)
			}
		}
		var nrm float64
		for _, c := range col {
			nrm += real(c)*real(c) + imag(c)*imag(c)
		}
		if nrm > 1e-12 {
			inv := complex(1/math.Sqrt(nrm), 0)
			for r := 0; r < m; r++ {
				u.Set(r, i, col[r]*inv)
			}
			return
		}
	}
}

// QR computes a thin QR decomposition A = Q R via complex Householder
// reflections: with k = min(m, n), Q is m x k with orthonormal columns and
// R is k x n upper trapezoidal. One triangularization pass makes it
// substantially cheaper than SVD for orthogonality-only factorizations —
// the MPS engine uses it for gauge (orthogonality-center) moves, where no
// singular values are needed (and the k < n case is exactly the rank bound
// a reshaped bond inherits from its neighbour).
func QR(a *Matrix) (q, r *Matrix) {
	m, n := a.Rows, a.Cols
	kk := n
	if m < kk {
		kk = m
	}
	work := a.Copy()
	vs := make([][]complex128, kk) // Householder vectors, vs[k] has length m-k
	for k := 0; k < kk; k++ {
		// Build the reflector zeroing work[k+1:m, k].
		var nrm float64
		for i := k; i < m; i++ {
			x := work.At(i, k)
			nrm += real(x)*real(x) + imag(x)*imag(x)
		}
		nrm = math.Sqrt(nrm)
		if nrm < 1e-300 {
			continue
		}
		x0 := work.At(k, k)
		phase := complex(1, 0)
		if cmplx.Abs(x0) > 1e-300 {
			phase = x0 / complex(cmplx.Abs(x0), 0)
		}
		alpha := -phase * complex(nrm, 0)
		v := make([]complex128, m-k)
		v[0] = x0 - alpha
		for i := k + 1; i < m; i++ {
			v[i-k] = work.At(i, k)
		}
		var vn float64
		for _, c := range v {
			vn += real(c)*real(c) + imag(c)*imag(c)
		}
		if vn < 1e-300 {
			continue
		}
		inv := complex(1/math.Sqrt(vn), 0)
		for i := range v {
			v[i] *= inv
		}
		vs[k] = v
		// Apply (I - 2 v v†) to the trailing block.
		for c := k; c < n; c++ {
			var dot complex128
			for i := k; i < m; i++ {
				dot += cmplx.Conj(v[i-k]) * work.At(i, c)
			}
			dot *= 2
			for i := k; i < m; i++ {
				work.Set(i, c, work.At(i, c)-dot*v[i-k])
			}
		}
	}
	r = New(kk, n)
	for i := 0; i < kk; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, work.At(i, j))
		}
	}
	// Accumulate the thin Q by applying the reflectors in reverse to the
	// first kk columns of the identity.
	q = New(m, kk)
	for i := 0; i < kk; i++ {
		q.Set(i, i, 1)
	}
	for k := kk - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		for c := 0; c < kk; c++ {
			var dot complex128
			for i := k; i < m; i++ {
				dot += cmplx.Conj(v[i-k]) * q.At(i, c)
			}
			dot *= 2
			for i := k; i < m; i++ {
				q.Set(i, c, q.At(i, c)-dot*v[i-k])
			}
		}
	}
	return q, r
}

// FuncHermitian returns f(A) = V f(Λ) V† for Hermitian A, applying f to each
// eigenvalue. This is used to build exact propagators exp(-iHt) for
// Hamiltonian-simulation references and the HHL unitaries.
func FuncHermitian(a *Matrix, f func(float64) complex128) *Matrix {
	vals, v := EigenHermitian(a)
	n := a.Rows
	fd := New(n, n)
	for i := 0; i < n; i++ {
		fd.Set(i, i, f(vals[i]))
	}
	return MatMul(MatMul(v, fd), v.Dagger())
}

// ExpIH returns exp(i t A) for Hermitian A.
func ExpIH(a *Matrix, t float64) *Matrix {
	return FuncHermitian(a, func(lam float64) complex128 {
		return cmplx.Exp(complex(0, t*lam))
	})
}

// SolveHermitian solves A x = b for Hermitian (invertible) A via its
// eigendecomposition; used as the classical reference for HHL.
func SolveHermitian(a *Matrix, b []complex128) []complex128 {
	inv := FuncHermitian(a, func(lam float64) complex128 {
		if math.Abs(lam) < 1e-14 {
			return 0
		}
		return complex(1/lam, 0)
	})
	return MatVec(inv, b)
}
