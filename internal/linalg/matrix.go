// Package linalg provides dense complex linear algebra used by the quantum
// simulators: matrices over complex128, Kronecker products, Hermitian
// eigendecomposition, singular value decomposition, and matrix functions.
//
// The package is self-contained (stdlib only) and tuned for the modest matrix
// sizes that occur in circuit simulation: gate matrices (2x2 .. 2^k x 2^k for
// small k) and MPS bond matrices (up to a few hundred rows/columns).
package linalg

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
)

// Matrix is a dense, row-major complex matrix.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// New returns a zero-initialized r x c matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must share one length.
func FromRows(rows [][]complex128) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Copy returns a deep copy of m.
func (m *Matrix) Copy() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Add returns a + b.
func Add(a, b *Matrix) *Matrix {
	checkSameShape(a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Matrix) *Matrix {
	checkSameShape(a, b)
	out := New(a.Rows, a.Cols)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s * m.
func Scale(s complex128, m *Matrix) *Matrix {
	out := New(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// MatMul returns the matrix product a * b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: matmul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatVec returns the product m * v for a vector v of length m.Cols.
func MatVec(m *Matrix, v []complex128) []complex128 {
	if m.Cols != len(v) {
		panic("linalg: matvec shape mismatch")
	}
	out := make([]complex128, m.Rows)
	for i := 0; i < m.Rows; i++ {
		var s complex128
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, mv := range row {
			s += mv * v[j]
		}
		out[i] = s
	}
	return out
}

// Kron returns the Kronecker product a ⊗ b.
func Kron(a, b *Matrix) *Matrix {
	out := New(a.Rows*b.Rows, a.Cols*b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			av := a.At(i, j)
			if av == 0 {
				continue
			}
			for k := 0; k < b.Rows; k++ {
				for l := 0; l < b.Cols; l++ {
					out.Set(i*b.Rows+k, j*b.Cols+l, av*b.At(k, l))
				}
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Conj returns the elementwise complex conjugate of m.
func (m *Matrix) Conj() *Matrix {
	out := New(m.Rows, m.Cols)
	for i, v := range m.Data {
		out.Data[i] = cmplx.Conj(v)
	}
	return out
}

// Dagger returns the conjugate transpose m†.
func (m *Matrix) Dagger() *Matrix {
	out := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, cmplx.Conj(m.At(i, j)))
		}
	}
	return out
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() complex128 {
	if m.Rows != m.Cols {
		panic("linalg: trace of non-square matrix")
	}
	var t complex128
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// FrobeniusNorm returns sqrt(sum |m_ij|^2).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// MaxAbsDiff returns max_ij |a_ij - b_ij|; a convenience for tests.
func MaxAbsDiff(a, b *Matrix) float64 {
	checkSameShape(a, b)
	var mx float64
	for i := range a.Data {
		if d := cmplx.Abs(a.Data[i] - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}

// IsHermitian reports whether m equals m† within tol.
func (m *Matrix) IsHermitian(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i; j < m.Cols; j++ {
			if cmplx.Abs(m.At(i, j)-cmplx.Conj(m.At(j, i))) > tol {
				return false
			}
		}
	}
	return true
}

// IsUnitary reports whether m† m equals the identity within tol.
func (m *Matrix) IsUnitary(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	p := MatMul(m.Dagger(), m)
	return MaxAbsDiff(p, Identity(m.Rows)) <= tol
}

// RandomHermitian returns an n x n Hermitian matrix with entries drawn from a
// standard normal distribution (real and imaginary parts).
func RandomHermitian(n int, rng *rand.Rand) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, complex(rng.NormFloat64(), 0))
		for j := i + 1; j < n; j++ {
			v := complex(rng.NormFloat64(), rng.NormFloat64())
			m.Set(i, j, v)
			m.Set(j, i, cmplx.Conj(v))
		}
	}
	return m
}

// RandomUnitary returns an n x n Haar-ish random unitary obtained by
// Gram-Schmidt orthonormalization of a complex Gaussian matrix.
func RandomUnitary(n int, rng *rand.Rand) *Matrix {
	m := New(n, n)
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	// Modified Gram-Schmidt on columns.
	for j := 0; j < n; j++ {
		for k := 0; k < j; k++ {
			var dot complex128
			for i := 0; i < n; i++ {
				dot += cmplx.Conj(m.At(i, k)) * m.At(i, j)
			}
			for i := 0; i < n; i++ {
				m.Set(i, j, m.At(i, j)-dot*m.At(i, k))
			}
		}
		var nrm float64
		for i := 0; i < n; i++ {
			nrm += real(m.At(i, j))*real(m.At(i, j)) + imag(m.At(i, j))*imag(m.At(i, j))
		}
		nrm = math.Sqrt(nrm)
		if nrm == 0 {
			m.Set(j, j, 1) // degenerate draw; keep the matrix nonsingular
			continue
		}
		inv := complex(1/nrm, 0)
		for i := 0; i < n; i++ {
			m.Set(i, j, m.At(i, j)*inv)
		}
	}
	return m
}

func checkSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	s := ""
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			v := m.At(i, j)
			s += fmt.Sprintf("(%7.4f%+7.4fi) ", real(v), imag(v))
		}
		s += "\n"
	}
	return s
}
