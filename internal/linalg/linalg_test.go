package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandomHermitian(5, rng)
	if d := MaxAbsDiff(MatMul(Identity(5), a), a); d > 1e-12 {
		t.Fatalf("I*A != A, diff %g", d)
	}
	if d := MaxAbsDiff(MatMul(a, Identity(5)), a); d > 1e-12 {
		t.Fatalf("A*I != A, diff %g", d)
	}
}

func TestMatMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a, b, c := RandomHermitian(4, rng), RandomHermitian(4, rng), RandomHermitian(4, rng)
	l := MatMul(MatMul(a, b), c)
	r := MatMul(a, MatMul(b, c))
	if d := MaxAbsDiff(l, r); d > 1e-10 {
		t.Fatalf("(AB)C != A(BC), diff %g", d)
	}
}

func TestKronShapeAndValues(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	b := FromRows([][]complex128{{0, 1}, {1, 0}})
	k := Kron(a, b)
	if k.Rows != 4 || k.Cols != 4 {
		t.Fatalf("kron shape %dx%d", k.Rows, k.Cols)
	}
	if k.At(0, 1) != 1 || k.At(1, 0) != 1 || k.At(0, 3) != 2 || k.At(3, 2) != 4 {
		t.Fatalf("unexpected kron values:\n%v", k)
	}
}

func TestKronMixedProduct(t *testing.T) {
	// (A⊗B)(C⊗D) = (AC)⊗(BD)
	rng := rand.New(rand.NewSource(3))
	a, b := RandomHermitian(2, rng), RandomHermitian(3, rng)
	c, d := RandomHermitian(2, rng), RandomHermitian(3, rng)
	l := MatMul(Kron(a, b), Kron(c, d))
	r := Kron(MatMul(a, c), MatMul(b, d))
	if df := MaxAbsDiff(l, r); df > 1e-10 {
		t.Fatalf("mixed product rule violated, diff %g", df)
	}
}

func TestDaggerInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	u := RandomUnitary(4, rng)
	if d := MaxAbsDiff(u.Dagger().Dagger(), u); d > 1e-12 {
		t.Fatalf("(A†)† != A")
	}
}

func TestRandomUnitaryIsUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 4, 8, 16} {
		u := RandomUnitary(n, rng)
		if !u.IsUnitary(1e-9) {
			t.Fatalf("RandomUnitary(%d) not unitary", n)
		}
	}
}

func TestEigenHermitianReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{1, 2, 3, 5, 8, 12} {
		a := RandomHermitian(n, rng)
		vals, v := EigenHermitian(a)
		if !v.IsUnitary(1e-8) {
			t.Fatalf("n=%d eigenvectors not unitary", n)
		}
		lam := New(n, n)
		for i := 0; i < n; i++ {
			lam.Set(i, i, complex(vals[i], 0))
		}
		rec := MatMul(MatMul(v, lam), v.Dagger())
		if d := MaxAbsDiff(rec, a); d > 1e-8 {
			t.Fatalf("n=%d reconstruction error %g", n, d)
		}
		for i := 1; i < n; i++ {
			if vals[i] < vals[i-1] {
				t.Fatalf("eigenvalues not ascending: %v", vals)
			}
		}
	}
}

func TestEigenKnownMatrix(t *testing.T) {
	// Pauli X has eigenvalues ±1.
	x := FromRows([][]complex128{{0, 1}, {1, 0}})
	vals, _ := EigenHermitian(x)
	if math.Abs(vals[0]+1) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("Pauli X eigenvalues %v, want [-1 1]", vals)
	}
	y := FromRows([][]complex128{{0, complex(0, -1)}, {complex(0, 1), 0}})
	vals, _ = EigenHermitian(y)
	if math.Abs(vals[0]+1) > 1e-12 || math.Abs(vals[1]-1) > 1e-12 {
		t.Fatalf("Pauli Y eigenvalues %v, want [-1 1]", vals)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][2]int{{1, 1}, {2, 2}, {3, 5}, {5, 3}, {8, 8}, {16, 4}, {4, 16}, {12, 7}}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		a := New(m, n)
		for i := range a.Data {
			a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		u, s, v := SVD(a)
		k := min(m, n)
		if u.Cols != k || v.Cols != k || len(s) != k {
			t.Fatalf("thin SVD shapes wrong for %dx%d", m, n)
		}
		// Rebuild A.
		rec := New(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var acc complex128
				for c := 0; c < k; c++ {
					acc += u.At(i, c) * complex(s[c], 0) * cmplx.Conj(v.At(j, c))
				}
				rec.Set(i, j, acc)
			}
		}
		if d := MaxAbsDiff(rec, a); d > 1e-7 {
			t.Fatalf("%dx%d SVD reconstruction error %g", m, n, d)
		}
		for i := 1; i < k; i++ {
			if s[i] > s[i-1]+1e-9 {
				t.Fatalf("singular values not descending: %v", s)
			}
		}
		if s[k-1] < -1e-12 {
			t.Fatalf("negative singular value %v", s)
		}
		// U and V must have orthonormal columns.
		if d := MaxAbsDiff(MatMul(u.Dagger(), u), Identity(k)); d > 1e-7 {
			t.Fatalf("U columns not orthonormal, diff %g", d)
		}
		if d := MaxAbsDiff(MatMul(v.Dagger(), v), Identity(k)); d > 1e-7 {
			t.Fatalf("V columns not orthonormal, diff %g", d)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := FromRows([][]complex128{{1, 2, 3}, {2, 4, 6}, {3, 6, 9}})
	u, s, v := SVD(a)
	if s[1] > 1e-7 || s[2] > 1e-7 {
		t.Fatalf("expected rank-1 spectrum, got %v", s)
	}
	_ = u
	_ = v
}

func TestExpIHUnitary(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := RandomHermitian(4, rng)
	u := ExpIH(h, 0.37)
	if !u.IsUnitary(1e-9) {
		t.Fatalf("exp(iHt) not unitary")
	}
	// exp(i*0*H) = I
	if d := MaxAbsDiff(ExpIH(h, 0), Identity(4)); d > 1e-10 {
		t.Fatalf("exp(0) != I, diff %g", d)
	}
	// exp(iH t) exp(-iH t) = I
	if d := MaxAbsDiff(MatMul(ExpIH(h, 0.9), ExpIH(h, -0.9)), Identity(4)); d > 1e-9 {
		t.Fatalf("propagator inverse mismatch %g", d)
	}
}

func TestSolveHermitian(t *testing.T) {
	a := FromRows([][]complex128{{2, 1}, {1, 3}})
	b := []complex128{1, 2}
	x := SolveHermitian(a, b)
	ax := MatVec(a, x)
	for i := range b {
		if cmplx.Abs(ax[i]-b[i]) > 1e-9 {
			t.Fatalf("A x != b: %v vs %v", ax, b)
		}
	}
}

func TestQuickEigenNormPreserved(t *testing.T) {
	// Property: for random Hermitian A, sum of eigenvalues equals trace.
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(r.Int31n(6))
		a := RandomHermitian(n, r)
		vals, _ := EigenHermitian(a)
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return math.Abs(sum-real(a.Trace())) < 1e-8*float64(n)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSVDFrobenius(t *testing.T) {
	// Property: ||A||_F^2 equals the sum of squared singular values.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + int(r.Int31n(8))
		n := 1 + int(r.Int31n(8))
		a := New(m, n)
		for i := range a.Data {
			a.Data[i] = complex(r.NormFloat64(), r.NormFloat64())
		}
		_, s, _ := SVD(a)
		var ss float64
		for _, sv := range s {
			ss += sv * sv
		}
		fn := a.FrobeniusNorm()
		return math.Abs(ss-fn*fn) < 1e-7*(1+fn*fn)
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(10))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatVec(t *testing.T) {
	a := FromRows([][]complex128{{1, 2}, {3, 4}})
	v := MatVec(a, []complex128{1, 1})
	if v[0] != 3 || v[1] != 7 {
		t.Fatalf("matvec wrong: %v", v)
	}
}

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	shapes := [][2]int{{1, 1}, {2, 2}, {4, 2}, {2, 4}, {8, 8}, {16, 5}, {5, 16}, {12, 12}}
	for _, sh := range shapes {
		m, n := sh[0], sh[1]
		a := New(m, n)
		for i := range a.Data {
			a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		q, r := QR(a)
		k := min(m, n)
		if q.Rows != m || q.Cols != k || r.Rows != k || r.Cols != n {
			t.Fatalf("thin QR shapes wrong for %dx%d: Q %dx%d R %dx%d", m, n, q.Rows, q.Cols, r.Rows, r.Cols)
		}
		if d := MaxAbsDiff(MatMul(q, r), a); d > 1e-10 {
			t.Fatalf("%dx%d QR reconstruction error %g", m, n, d)
		}
		if d := MaxAbsDiff(MatMul(q.Dagger(), q), Identity(k)); d > 1e-10 {
			t.Fatalf("%dx%d Q columns not orthonormal, diff %g", m, n, d)
		}
		for i := 0; i < k; i++ {
			for j := 0; j < i && j < n; j++ {
				if cmplx.Abs(r.At(i, j)) > 1e-12 {
					t.Fatalf("%dx%d R not upper trapezoidal at (%d,%d)", m, n, i, j)
				}
			}
		}
	}
}

func TestQRRankDeficient(t *testing.T) {
	// Rank-1 tall matrix: QR must still reconstruct exactly with
	// orthonormal Q (the null directions get arbitrary completions).
	a := FromRows([][]complex128{{1, 2}, {2, 4}, {3, 6}})
	q, r := QR(a)
	if d := MaxAbsDiff(MatMul(q, r), a); d > 1e-10 {
		t.Fatalf("rank-deficient QR reconstruction error %g", d)
	}
	if d := MaxAbsDiff(MatMul(q.Dagger(), q), Identity(2)); d > 1e-10 {
		t.Fatalf("rank-deficient Q not orthonormal, diff %g", d)
	}
}
