// Package prte models the PMIx Reference RunTime Environment in Distributed
// Virtual Machine (DVM) mode: a persistent runtime spanning an allocation's
// nodes that spawns process groups rapidly, identified by a DVM URI shared
// with every component that needs to launch work (QFw's QPM and QRC).
//
// Processes are goroutines pinned to core slots of the cluster model;
// spawning a group wires the ranks into an mpi.World whose cost model
// reflects the ranks' physical placement.
package prte

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qfw/internal/cluster"
	"qfw/internal/faults"
	"qfw/internal/mpi"
	"qfw/internal/slurm"
)

var dvmCounter atomic.Int64

// DVM is a running distributed virtual machine over a node set.
type DVM struct {
	URI string

	machine *cluster.Machine
	nodes   []*cluster.Node

	mu     sync.Mutex
	closed bool
	active sync.WaitGroup
}

// Start boots a DVM across the nodes of a SLURM het group.
func Start(m *cluster.Machine, set slurm.NodeSet) (*DVM, error) {
	if len(set.Nodes) == 0 {
		return nil, fmt.Errorf("prte: empty node set")
	}
	id := dvmCounter.Add(1)
	return &DVM{
		URI:     fmt.Sprintf("prte://node%03d.%s/dvm-%d", set.Nodes[0].ID, m.Name, id),
		machine: m,
		nodes:   set.Nodes,
	}, nil
}

// Nodes returns the node count the DVM spans.
func (d *DVM) Nodes() int { return len(d.nodes) }

// Placement is a spawn layout request.
type Placement struct {
	// Nodes and ProcsPerNode define the (#N, #P) layout that appears on the
	// secondary x-axis of every figure in the paper. Nodes == 0 means all
	// DVM nodes.
	Nodes        int
	ProcsPerNode int
}

// TotalProcs returns Nodes*ProcsPerNode after defaulting.
func (p Placement) TotalProcs(dvmNodes int) int {
	n := p.Nodes
	if n == 0 {
		n = dvmNodes
	}
	ppn := p.ProcsPerNode
	if ppn == 0 {
		ppn = 1
	}
	return n * ppn
}

// ProcGroup is a spawned set of ranks ready to run an SPMD function.
type ProcGroup struct {
	World  *mpi.World
	Places []cluster.CorePlace
	dvm    *DVM
}

// Spawn places a process group on the DVM's nodes round-robin across LLC
// domains and returns the group with its MPI world wired up.
func (d *DVM) Spawn(p Placement) (*ProcGroup, error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil, fmt.Errorf("prte: DVM %s is shut down", d.URI)
	}
	d.active.Add(1)
	d.mu.Unlock()

	nNodes := p.Nodes
	if nNodes == 0 {
		nNodes = len(d.nodes)
	}
	if nNodes > len(d.nodes) {
		d.active.Done()
		return nil, fmt.Errorf("prte: placement wants %d nodes, DVM spans %d", nNodes, len(d.nodes))
	}
	ppn := p.ProcsPerNode
	if ppn == 0 {
		ppn = 1
	}
	var places []cluster.CorePlace
	for i := 0; i < nNodes; i++ {
		nodePlaces, err := d.nodes[i].PlaceProcs(ppn)
		if err != nil {
			d.active.Done()
			// Core exhaustion is contention, not a broken placement: earlier
			// groups release their slots, so a retry can succeed where a
			// closed DVM or an oversized placement never will.
			return nil, fmt.Errorf("prte: %w", faults.Transient(err))
		}
		places = append(places, nodePlaces...)
	}
	world := mpi.NewWorld(len(places), mpi.WithPlacement(places, d.machine.Net))
	return &ProcGroup{World: world, Places: places, dvm: d}, nil
}

// Run executes fn on every rank of the group and releases the slots.
func (g *ProcGroup) Run(fn func(c *mpi.Comm) error) error {
	defer g.dvm.active.Done()
	return g.World.Run(fn)
}

// Release frees the group without running (e.g. on setup failure).
func (g *ProcGroup) Release() { g.dvm.active.Done() }

// Shutdown waits for active process groups and closes the DVM.
func (d *DVM) Shutdown() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.active.Wait()
}
