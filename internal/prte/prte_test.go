package prte

import (
	"strings"
	"testing"

	"qfw/internal/cluster"
	"qfw/internal/mpi"
	"qfw/internal/slurm"
)

func setup(t *testing.T, nodes int) (*cluster.Machine, slurm.NodeSet, *slurm.Job) {
	t.Helper()
	m := cluster.Frontier(nodes)
	s := slurm.NewScheduler(m)
	job, err := s.Submit(slurm.JobReq{Name: "t", HetGroups: []slurm.GroupReq{{Name: "hetgroup-1", Nodes: nodes}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := job.WaitStart()
	if err != nil {
		t.Fatal(err)
	}
	return m, alloc.Group(0), job
}

func TestDVMURIAndSpawn(t *testing.T) {
	m, set, job := setup(t, 2)
	defer job.Complete()
	dvm, err := Start(m, set)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dvm.URI, "prte://") {
		t.Fatalf("URI %q", dvm.URI)
	}
	pg, err := dvm.Spawn(Placement{Nodes: 2, ProcsPerNode: 4})
	if err != nil {
		t.Fatal(err)
	}
	if pg.World.Size != 8 {
		t.Fatalf("world size %d", pg.World.Size)
	}
	// Placement spans both nodes.
	nodes := map[int]bool{}
	for _, p := range pg.Places {
		nodes[p.Node] = true
	}
	if len(nodes) != 2 {
		t.Fatalf("procs on %d nodes, want 2", len(nodes))
	}
	sum := 0.0
	err = pg.Run(func(c *mpi.Comm) error {
		s := c.AllreduceSum(1)
		if c.Rank() == 0 {
			sum = s
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 8 {
		t.Fatalf("allreduce over spawned group: %g", sum)
	}
	dvm.Shutdown()
}

func TestSpawnAfterShutdownFails(t *testing.T) {
	m, set, job := setup(t, 1)
	defer job.Complete()
	dvm, err := Start(m, set)
	if err != nil {
		t.Fatal(err)
	}
	dvm.Shutdown()
	if _, err := dvm.Spawn(Placement{ProcsPerNode: 1}); err == nil {
		t.Fatal("expected spawn failure after shutdown")
	}
}

func TestSpawnOverflow(t *testing.T) {
	m, set, job := setup(t, 1)
	defer job.Complete()
	dvm, _ := Start(m, set)
	defer dvm.Shutdown()
	if _, err := dvm.Spawn(Placement{Nodes: 2, ProcsPerNode: 1}); err == nil {
		t.Fatal("expected error: placement wants more nodes than DVM spans")
	}
	if _, err := dvm.Spawn(Placement{Nodes: 1, ProcsPerNode: 100}); err == nil {
		t.Fatal("expected error: more procs than usable cores")
	}
}

func TestUniqueURIs(t *testing.T) {
	m, set, job := setup(t, 1)
	defer job.Complete()
	d1, _ := Start(m, set)
	d2, _ := Start(m, set)
	if d1.URI == d2.URI {
		t.Fatalf("DVM URIs collide: %s", d1.URI)
	}
	d1.Shutdown()
	d2.Shutdown()
}
