package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCounterConcurrentExact(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("hits_total")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 80000 {
		t.Fatalf("counter %d, want 80000 exact", c.Value())
	}
	c.Add(-5)
	if c.Value() != 80000 {
		t.Fatal("negative delta moved a monotonic counter")
	}
	if m.Counter("hits_total") != c {
		t.Fatal("registry handed out a second handle for the same name")
	}
}

// TestHistogramQuantilesAgainstReference feeds a lognormal latency sample
// and checks every reported quantile against the exact nearest-rank order
// statistic: the log-bucketed estimate must sit at or above the exact
// value and within the documented factor-sqrt(2) bound.
func TestHistogramQuantilesAgainstReference(t *testing.T) {
	h := NewMetrics().Histogram("lat_ms")
	rng := rand.New(rand.NewSource(42))
	const n = 5000
	ref := make([]float64, 0, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		v := math.Exp(rng.NormFloat64()) // lognormal around 1ms
		ref = append(ref, v)
		sum += v
		h.Observe(v)
	}
	sort.Float64s(ref)

	if h.Count() != n {
		t.Fatalf("count %d, want %d", h.Count(), n)
	}
	if math.Abs(h.Sum()-sum) > 1e-9*sum {
		t.Fatalf("sum %v, want %v exact", h.Sum(), sum)
	}
	if h.Max() != ref[n-1] {
		t.Fatalf("max %v, want %v exact", h.Max(), ref[n-1])
	}
	for _, p := range []float64{0.50, 0.90, 0.99} {
		exact := ref[int(math.Ceil(p*float64(n)))-1]
		got := h.Quantile(p)
		if got < exact || got > exact*math.Sqrt2*(1+1e-9) {
			t.Fatalf("p%g: estimate %v outside [%v, %v*sqrt2]", 100*p, got, exact, exact)
		}
	}
	if NewMetrics().Histogram("empty").Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile nonzero")
	}
	bounds := HistogramBounds()
	if !sort.Float64sAreSorted(bounds) || len(bounds) == 0 {
		t.Fatalf("bucket bounds malformed (%d bounds)", len(bounds))
	}
}

func TestHistogramClampsNegative(t *testing.T) {
	h := NewMetrics().Histogram("clamp_ms")
	h.Observe(-3)
	if h.Count() != 1 || h.Sum() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation not clamped: count=%d sum=%v", h.Count(), h.Sum())
	}
}

// TestGaugeDownsamplingInvariants records 100k observations and checks the
// contract: the retained series stays under its sample budget and in time
// order, while count/last/min/max/mean remain exact over every observation.
func TestGaugeDownsamplingInvariants(t *testing.T) {
	g := NewMetrics().Gauge("depth")
	const n = 100000
	for i := 0; i < n; i++ {
		g.Record(float64(i))
	}
	if g.Count() != n {
		t.Fatalf("count %d, want %d", g.Count(), n)
	}
	if g.Last() != n-1 || g.Min() != 0 || g.Max() != n-1 {
		t.Fatalf("aggregates last=%v min=%v max=%v", g.Last(), g.Min(), g.Max())
	}
	if mean := g.Mean(); mean != (n-1)/2.0 {
		t.Fatalf("mean %v, want %v exact", mean, (n-1)/2.0)
	}
	if sc := g.SampleCount(); sc == 0 || sc > defaultGaugeSamples {
		t.Fatalf("retained %d samples, want (0, %d]", sc, defaultGaugeSamples)
	}
	vals := g.Values()
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] { // monotone input must stay monotone
			t.Fatalf("downsampled series out of order at %d", i)
		}
	}
	samples := g.Series()
	for i := 1; i < len(samples); i++ {
		if samples[i].T.Before(samples[i-1].T) {
			t.Fatalf("sample timestamps out of order at %d", i)
		}
	}
}

func TestWritePrometheusExposition(t *testing.T) {
	m := NewMetrics()
	m.Counter(LabeledName("qfw_serve_cache_hits_total", "backend", "aer")).Add(3)
	depth := m.Gauge(LabeledName("qfw_serve_queue_depth", "backend", "aer"))
	depth.Record(2)
	depth.Record(5)
	depth.Record(1)
	h := m.Histogram(LabeledName("qfw_qpm_exec_ms", "backend", "aer"))
	for _, v := range []float64{0.5, 1, 2, 4, 100} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := m.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE qfw_serve_cache_hits_total counter",
		`qfw_serve_cache_hits_total{backend="aer"} 3`,
		"# TYPE qfw_serve_queue_depth gauge",
		`qfw_serve_queue_depth{backend="aer"} 1`,
		`qfw_serve_queue_depth_peak{backend="aer"} 5`,
		"# TYPE qfw_qpm_exec_ms histogram",
		`le="+Inf"} 5`,
		`qfw_qpm_exec_ms_sum{backend="aer"} 107.5`,
		`qfw_qpm_exec_ms_count{backend="aer"} 5`,
		`qfw_qpm_exec_ms_p50{backend="aer"}`,
		`qfw_qpm_exec_ms_p99{backend="aer"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing.
	var prev int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "qfw_qpm_exec_ms_bucket") {
			continue
		}
		fields := strings.Fields(line)
		cum, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if cum < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = cum
	}
	if prev != 5 {
		t.Fatalf("final cumulative bucket %d, want 5", prev)
	}
}

func TestChromeTraceExport(t *testing.T) {
	r := NewRecorder()
	t0 := r.Epoch()
	r.Record("serve:dispatch", "serve-0", t0, t0.Add(4*time.Millisecond), nil)
	r.Record("executor:ghz", "aer-0", t0.Add(time.Millisecond), t0.Add(3*time.Millisecond),
		map[string]string{"attempt": "1"})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", out.DisplayTimeUnit)
	}
	meta, complete := 0, 0
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if e.Dur <= 0 || e.TID == 0 {
				t.Fatalf("complete event malformed: %+v", e)
			}
			if e.Name == "executor:ghz" {
				if e.Args["attempt"] != "1" {
					t.Fatalf("attrs lost: %+v", e)
				}
				if math.Abs(e.TS-1000) > 1 || math.Abs(e.Dur-2000) > 1 {
					t.Fatalf("microsecond timestamps wrong: ts=%v dur=%v", e.TS, e.Dur)
				}
			}
		}
	}
	if meta != 2 || complete != 2 {
		t.Fatalf("events meta=%d complete=%d, want 2/2", meta, complete)
	}
}

func TestTelemetryServiceHandle(t *testing.T) {
	r := NewRecorder()
	r.Metrics().Counter("svc_total").Inc()
	t0 := r.Epoch()
	r.Record("op", "w", t0, t0.Add(time.Millisecond), nil)
	svc := &Service{Rec: r}

	raw, err := svc.Handle("metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	var mr struct {
		Text string `json:"text"`
	}
	if err := json.Unmarshal(raw, &mr); err != nil || !strings.Contains(mr.Text, "svc_total 1") {
		t.Fatalf("metrics RPC: err=%v text=%q", err, mr.Text)
	}

	raw, err = svc.Handle("trace", nil)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil || len(tr.TraceEvents) == 0 {
		t.Fatalf("trace RPC: err=%v events=%d", err, len(tr.TraceEvents))
	}

	raw, err = svc.Handle("stats", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st RecorderStats
	if err := json.Unmarshal(raw, &st); err != nil || st.Recorded != 1 {
		t.Fatalf("stats RPC: err=%v stats=%+v", err, st)
	}

	if _, err := svc.Handle("bogus", nil); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestUtilSamplerComputesBusyFraction(t *testing.T) {
	m := NewMetrics()
	u := NewUtilSampler(m, time.Hour) // ticker never fires; Sample driven by hand
	var busy atomic.Int64
	u.Watch("util_busy", 1, busy.Load)
	u.Watch("util_idle", 2, func() int64 { return 0 })

	time.Sleep(2 * time.Millisecond)
	busy.Store(int64(time.Hour)) // vastly more than wall time: clamps to 1
	u.Sample()
	if got := m.Gauge("util_busy").Last(); got != 1 {
		t.Fatalf("saturated source utilization %v, want clamp to 1", got)
	}
	if got := m.Gauge("util_idle").Last(); got != 0 {
		t.Fatalf("idle source utilization %v, want 0", got)
	}

	// Stop records one final sample even without a tick.
	u.Start()
	time.Sleep(time.Millisecond)
	u.Stop()
	if m.Gauge("util_idle").Count() < 2 {
		t.Fatalf("Stop did not record a final sample (count %d)", m.Gauge("util_idle").Count())
	}
}

// TestRegistryConcurrentAccess hammers every instrument kind alongside the
// exposition writer and the span ring; it exists to fail under -race.
func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRecorder()
	m := r.Metrics()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m.Counter("race_total").Inc()
				m.Gauge("race_gauge").Record(float64(i))
				m.Histogram("race_ms").Observe(float64(i % 7))
				done := r.Span("race", "w")
				done()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if err := m.WritePrometheus(io.Discard); err != nil {
				t.Errorf("exposition: %v", err)
				return
			}
			_ = r.Events()
			_ = r.Stats()
			_ = m.Histogram("race_ms").Quantile(0.99)
		}
	}()
	wg.Wait()
	if m.Counter("race_total").Value() != 8000 {
		t.Fatalf("counter %d, want 8000", m.Counter("race_total").Value())
	}
	if m.Histogram("race_ms").Count() != 8000 {
		t.Fatalf("histogram %d, want 8000", m.Histogram("race_ms").Count())
	}
}
