// Package trace is the production observability core QFw attaches to every
// backend (Sec. 4.1 of the paper): a bounded ring-buffered span recorder
// (queryable as an event list, renderable as the Fig. 5 timeline, dumpable
// as Chrome trace-event JSON) plus a typed metrics registry — counters,
// gauge time series, and latency histograms — exported over the telemetry
// RPC and the qfwd Prometheus endpoint.
//
// The whole surface can be switched off (QFW_OBS=off or SetEnabled(false)),
// turning every Record/Observe into a cheap no-op for overhead ablations.
package trace

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EnvVar is the environment switch for the observability surface:
// QFW_OBS=off (or 0/false) disables span recording and metric updates.
const EnvVar = "QFW_OBS"

var disabled atomic.Bool

func init() {
	switch strings.ToLower(os.Getenv(EnvVar)) {
	case "off", "0", "false", "disabled":
		disabled.Store(true)
	}
}

// Enabled reports whether the observability surface records anything.
func Enabled() bool { return !disabled.Load() }

// SetEnabled toggles the whole observability surface at runtime (the
// programmatic form of QFW_OBS). Reads keep working either way.
func SetEnabled(on bool) { disabled.Store(!on) }

// Event is one recorded span.
type Event struct {
	Name   string
	Worker string
	Start  time.Time
	End    time.Time
	Attrs  map[string]string
}

// Duration returns the span length.
func (e Event) Duration() time.Duration { return e.End.Sub(e.Start) }

// DefaultCapacity is the span ring size of NewRecorder — large enough for
// the bench timelines, small enough that a long-lived daemon's recorder
// stays a few MB no matter how much traffic it serves.
const DefaultCapacity = 16384

// Recorder collects spans thread-safely into a bounded ring: once the
// capacity is reached, each new span overwrites the oldest and the drop
// counter advances, so memory stays flat under sustained traffic. Gauges
// and other instantaneous measurements live in the attached Metrics
// registry, not the event ring.
type Recorder struct {
	mu       sync.Mutex
	cap      int
	buf      []Event // ring storage; grows to cap, then wraps
	next     int     // write cursor (index of the oldest event once full)
	recorded int64
	dropped  int64
	sorted   []Event // cached sorted view; valid when !dirty
	dirty    bool
	t0       time.Time
	met      *Metrics
}

// NewRecorder returns a recorder with the default ring capacity and its
// epoch set to now.
func NewRecorder() *Recorder { return NewRecorderCap(DefaultCapacity) }

// NewRecorderCap returns a recorder retaining at most capacity spans
// (<= 0 selects DefaultCapacity).
func NewRecorderCap(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{cap: capacity, t0: time.Now(), met: NewMetrics()}
}

// Epoch returns the recorder's zero time.
func (r *Recorder) Epoch() time.Time { return r.t0 }

// Metrics returns the recorder's metrics registry. Every layer holding the
// recorder (QPM, serving layer, daemon) shares one registry, so the export
// endpoints see the whole stack.
func (r *Recorder) Metrics() *Metrics { return r.met }

// Record appends a completed span, overwriting the oldest one when the
// ring is full.
func (r *Recorder) Record(name, worker string, start, end time.Time, attrs map[string]string) {
	if !Enabled() {
		return
	}
	e := Event{Name: name, Worker: worker, Start: start, End: end, Attrs: attrs}
	r.mu.Lock()
	r.recorded++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
		r.next = (r.next + 1) % r.cap
		r.dropped++
	}
	r.dirty = true
	r.mu.Unlock()
}

// Span starts a span and returns a closure that completes it.
func (r *Recorder) Span(name, worker string) func() {
	start := time.Now()
	return func() {
		r.Record(name, worker, start, time.Now(), nil)
	}
}

// Gauge records an instantaneous measurement (queue depth, utilization).
// Gauges live in the metrics registry as bounded time series — not in the
// span ring — so high-rate telemetry neither evicts execution spans nor
// pollutes the timeline. The worker argument is accepted for call-site
// symmetry with Span but is not part of the series identity.
func (r *Recorder) Gauge(name, worker string, value float64) {
	r.met.Gauge(name).Record(value)
}

// GaugeSeries returns the retained values of a gauge in time order (the
// series is downsampled once it exceeds its sample budget; the aggregates
// reported by GaugeMax stay exact).
func (r *Recorder) GaugeSeries(name string) []float64 {
	if g := r.met.LookupGauge(name); g != nil {
		return g.Values()
	}
	return nil
}

// GaugeMax returns the peak recorded value of a gauge (0 when unseen) —
// exact over every observation, including downsampled ones.
func (r *Recorder) GaugeMax(name string) float64 {
	if g := r.met.LookupGauge(name); g != nil {
		return g.Max()
	}
	return 0
}

// RecorderStats reports the ring occupancy of a recorder.
type RecorderStats struct {
	Capacity int   `json:"capacity"`
	Retained int   `json:"retained"`
	Recorded int64 `json:"recorded"`
	Dropped  int64 `json:"dropped"`
}

// Stats snapshots the ring accounting: Recorded counts every span ever
// recorded, Dropped the ones overwritten by wraparound, and Retained the
// spans currently readable (Recorded == Dropped + Retained).
func (r *Recorder) Stats() RecorderStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RecorderStats{Capacity: r.cap, Retained: len(r.buf), Recorded: r.recorded, Dropped: r.dropped}
}

// Events returns a copy of the retained events sorted by start time. The
// sorted view is maintained incrementally: it is rebuilt only when new
// events arrived since the last read (spans mostly complete in start
// order, so the rebuild is usually a linear verification pass), and
// repeated reads between writes reuse the cached ordering.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	if r.dirty {
		r.sorted = append(r.sorted[:0], r.buf...)
		if !sort.SliceIsSorted(r.sorted, func(i, j int) bool { return r.sorted[i].Start.Before(r.sorted[j].Start) }) {
			sort.SliceStable(r.sorted, func(i, j int) bool { return r.sorted[i].Start.Before(r.sorted[j].Start) })
		}
		r.dirty = false
	}
	out := append([]Event(nil), r.sorted...)
	r.mu.Unlock()
	return out
}

// Len returns the number of retained events (bounded by the ring capacity;
// see Stats for the total recorded).
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// MaxConcurrency returns the peak number of simultaneously open spans with
// the given name prefix — used to verify the "about four concurrent
// sub-QAOAs" observation from Fig. 5.
func (r *Recorder) MaxConcurrency(prefix string) int {
	type edge struct {
		t     time.Time
		delta int
	}
	var edges []edge
	for _, e := range r.Events() {
		if !strings.HasPrefix(e.Name, prefix) {
			continue
		}
		edges = append(edges, edge{e.Start, +1}, edge{e.End, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t.Equal(edges[j].t) {
			return edges[i].delta < edges[j].delta // close before open at ties
		}
		return edges[i].t.Before(edges[j].t)
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Timeline renders an ASCII Gantt chart of the events grouped by worker,
// the textual analog of the paper's Fig. 5. Instantaneous (zero-duration)
// events are excluded: they carry no extent to draw and belong to the
// metrics surface, not the execution timeline.
func (r *Recorder) Timeline(width int) string {
	var events []Event
	for _, e := range r.Events() {
		if e.Duration() > 0 {
			events = append(events, e)
		}
	}
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width <= 0 {
		width = 80
	}
	start := events[0].Start
	end := events[0].End
	for _, e := range events {
		if e.Start.Before(start) {
			start = e.Start
		}
		if e.End.After(end) {
			end = e.End
		}
	}
	span := end.Sub(start)
	if span <= 0 {
		span = time.Nanosecond
	}
	byWorker := map[string][]Event{}
	var workers []string
	for _, e := range events {
		if _, ok := byWorker[e.Worker]; !ok {
			workers = append(workers, e.Worker)
		}
		byWorker[e.Worker] = append(byWorker[e.Worker], e)
	}
	sort.Strings(workers)
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %s total, %d events\n", span.Round(time.Millisecond), len(events))
	for _, w := range workers {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range byWorker[w] {
			s := int(float64(e.Start.Sub(start)) / float64(span) * float64(width-1))
			t := int(float64(e.End.Sub(start)) / float64(span) * float64(width-1))
			for i := s; i <= t && i < width; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-24s |%s|\n", w, string(row))
	}
	return b.String()
}
