// Package trace provides the unified timing instrumentation QFw attaches to
// every backend (Sec. 4.1 of the paper): spans recorded per worker/backend,
// queryable as an event list and renderable as the iteration-level timeline
// of Fig. 5.
package trace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Event is one recorded span.
type Event struct {
	Name   string
	Worker string
	Start  time.Time
	End    time.Time
	Attrs  map[string]string
}

// Duration returns the span length.
func (e Event) Duration() time.Duration { return e.End.Sub(e.Start) }

// Recorder collects events thread-safely.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	t0     time.Time
}

// NewRecorder returns a recorder with its epoch set to now.
func NewRecorder() *Recorder {
	return &Recorder{t0: time.Now()}
}

// Epoch returns the recorder's zero time.
func (r *Recorder) Epoch() time.Time { return r.t0 }

// Record appends a completed span.
func (r *Recorder) Record(name, worker string, start, end time.Time, attrs map[string]string) {
	r.mu.Lock()
	r.events = append(r.events, Event{Name: name, Worker: worker, Start: start, End: end, Attrs: attrs})
	r.mu.Unlock()
}

// Span starts a span and returns a closure that completes it.
func (r *Recorder) Span(name, worker string) func() {
	start := time.Now()
	return func() {
		r.Record(name, worker, start, time.Now(), nil)
	}
}

// Gauge records an instantaneous measurement (queue depth, utilization) as
// a zero-duration event carrying the value as an attribute — the serving
// layer's telemetry rides the same event stream as the execution spans, so
// one recorder holds the full picture of a session.
func (r *Recorder) Gauge(name, worker string, value float64) {
	now := time.Now()
	r.Record(name, worker, now, now, map[string]string{"value": strconv.FormatFloat(value, 'g', -1, 64)})
}

// GaugeSeries returns the recorded values of a gauge in time order.
func (r *Recorder) GaugeSeries(name string) []float64 {
	var out []float64
	for _, e := range r.Events() {
		if e.Name != name || e.Attrs == nil {
			continue
		}
		if s, ok := e.Attrs["value"]; ok {
			if v, err := strconv.ParseFloat(s, 64); err == nil {
				out = append(out, v)
			}
		}
	}
	return out
}

// GaugeMax returns the peak recorded value of a gauge (0 when unseen).
func (r *Recorder) GaugeMax(name string) float64 {
	var peak float64
	for _, v := range r.GaugeSeries(name) {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Events returns a copy of all recorded events sorted by start time.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	out := append([]Event(nil), r.events...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// MaxConcurrency returns the peak number of simultaneously open spans with
// the given name prefix — used to verify the "about four concurrent
// sub-QAOAs" observation from Fig. 5.
func (r *Recorder) MaxConcurrency(prefix string) int {
	type edge struct {
		t     time.Time
		delta int
	}
	var edges []edge
	for _, e := range r.Events() {
		if !strings.HasPrefix(e.Name, prefix) {
			continue
		}
		edges = append(edges, edge{e.Start, +1}, edge{e.End, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t.Equal(edges[j].t) {
			return edges[i].delta < edges[j].delta // close before open at ties
		}
		return edges[i].t.Before(edges[j].t)
	})
	cur, peak := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}

// Timeline renders an ASCII Gantt chart of the events grouped by worker,
// the textual analog of the paper's Fig. 5.
func (r *Recorder) Timeline(width int) string {
	events := r.Events()
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width <= 0 {
		width = 80
	}
	start := events[0].Start
	end := events[0].End
	for _, e := range events {
		if e.Start.Before(start) {
			start = e.Start
		}
		if e.End.After(end) {
			end = e.End
		}
	}
	span := end.Sub(start)
	if span <= 0 {
		span = time.Nanosecond
	}
	byWorker := map[string][]Event{}
	var workers []string
	for _, e := range events {
		if _, ok := byWorker[e.Worker]; !ok {
			workers = append(workers, e.Worker)
		}
		byWorker[e.Worker] = append(byWorker[e.Worker], e)
	}
	sort.Strings(workers)
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %s total, %d events\n", span.Round(time.Millisecond), len(events))
	for _, w := range workers {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range byWorker[w] {
			s := int(float64(e.Start.Sub(start)) / float64(span) * float64(width-1))
			t := int(float64(e.End.Sub(start)) / float64(span) * float64(width-1))
			for i := s; i <= t && i < width; i++ {
				row[i] = '#'
			}
		}
		fmt.Fprintf(&b, "%-24s |%s|\n", w, string(row))
	}
	return b.String()
}
