package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// ---- Prometheus text exposition ---------------------------------------

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples (gauges
// additionally expose their exact peak as <base>_peak), histograms as
// cumulative _bucket/_sum/_count families plus derived _p50/_p90/_p99
// gauges so scrapers get quantiles without server-side aggregation.
// Output is sorted by metric name, so scrapes are deterministic.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	bw := &errWriter{w: w}
	typed := map[string]bool{}
	emitType := func(base, kind string) {
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, kind)
		}
	}

	m.mu.RLock()
	counters := make(map[string]*Counter, len(m.counters))
	for n, c := range m.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(m.gauges))
	for n, g := range m.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(m.histograms))
	for n, h := range m.histograms {
		hists[n] = h
	}
	m.mu.RUnlock()

	for _, name := range sortedKeys(counters) {
		base, _ := splitLabeled(name)
		emitType(base, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, counters[name].Value())
	}
	for _, name := range sortedKeys(gauges) {
		g := gauges[name]
		base, labels := splitLabeled(name)
		emitType(base, "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, fmtFloat(g.Last()))
		peak := base + "_peak"
		emitType(peak, "gauge")
		fmt.Fprintf(bw, "%s %s\n", withLabels(peak, labels), fmtFloat(g.Max()))
	}
	for _, name := range sortedKeys(hists) {
		snap := hists[name].snapshot()
		base, labels := splitLabeled(name)
		emitType(base, "histogram")
		var cum int64
		last := len(snap.counts) - 1 // trim trailing empty buckets, keep +Inf
		for last > 0 && snap.counts[last] == 0 {
			last--
		}
		for i := 0; i <= last && i < len(histBounds); i++ {
			cum += snap.counts[i]
			le := strconv.FormatFloat(histBounds[i], 'g', -1, 64)
			fmt.Fprintf(bw, "%s %d\n", withLabels(base+"_bucket", joinLabels(labels, `le="`+le+`"`)), cum)
		}
		fmt.Fprintf(bw, "%s %d\n", withLabels(base+"_bucket", joinLabels(labels, `le="+Inf"`)), snap.count)
		fmt.Fprintf(bw, "%s %s\n", withLabels(base+"_sum", labels), fmtFloat(snap.sum))
		fmt.Fprintf(bw, "%s %d\n", withLabels(base+"_count", labels), snap.count)
		h := hists[name]
		for _, q := range []struct {
			suffix string
			p      float64
		}{{"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}} {
			emitType(base+q.suffix, "gauge")
			fmt.Fprintf(bw, "%s %s\n", withLabels(base+q.suffix, labels), fmtFloat(h.Quantile(q.p)))
		}
	}
	return bw.err
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func withLabels(base, labels string) string {
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}

func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	}
	return a + "," + b
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

// ---- Chrome trace-event JSON ------------------------------------------

// chromeEvent is one entry of the Chrome trace-event format ("X" complete
// events; "M" metadata naming the rows). Timestamps are microseconds from
// the recorder epoch, so the dump loads directly in chrome://tracing and
// Perfetto with workers as threads.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace dumps the retained spans as Chrome trace-event JSON.
// Each worker becomes one named thread row, so nested spans (a serve
// dispatch containing its executor attempts) render as stacked bars in
// Perfetto exactly like the paper's Fig. 5 timeline.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Events()
	workers := map[string]int{}
	var names []string
	for _, e := range events {
		if _, ok := workers[e.Worker]; !ok {
			workers[e.Worker] = 0
			names = append(names, e.Worker)
		}
	}
	sort.Strings(names)
	for i, n := range names {
		workers[n] = i + 1
	}
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)+len(names)), DisplayTimeUnit: "ms"}
	for _, n := range names {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: workers[n],
			Args: map[string]string{"name": n},
		})
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  "qfw",
			Ph:   "X",
			TS:   float64(e.Start.Sub(r.t0)) / 1e3,
			Dur:  float64(e.Duration()) / 1e3,
			PID:  1,
			TID:  workers[e.Worker],
			Args: e.Attrs,
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ---- Telemetry RPC service --------------------------------------------

// Service exposes a recorder over the DEFw RPC surface (methods: metrics,
// trace, stats) — the in-band counterpart of the qfwd HTTP endpoint, so
// clients on the RPC connection can scrape without a second port.
type Service struct {
	Rec *Recorder
}

// metricsResp wraps the Prometheus text exposition for the "metrics" RPC
// (payloads must be JSON).
type metricsResp struct {
	Text string `json:"text"`
}

// Handle implements the defw handler contract: "metrics" returns the
// Prometheus text exposition, "trace" the Chrome trace-event JSON, and
// "stats" the span-ring accounting.
func (s *Service) Handle(method string, payload []byte) ([]byte, error) {
	switch method {
	case "metrics":
		var buf bytes.Buffer
		if err := s.Rec.Metrics().WritePrometheus(&buf); err != nil {
			return nil, err
		}
		return json.Marshal(metricsResp{Text: buf.String()})
	case "trace":
		var buf bytes.Buffer
		if err := s.Rec.WriteChromeTrace(&buf); err != nil {
			return nil, err
		}
		return bytes.TrimSpace(buf.Bytes()), nil
	case "stats":
		return json.Marshal(s.Rec.Stats())
	default:
		return nil, fmt.Errorf("telemetry: unknown method %q", method)
	}
}

// ServiceName is the DEFw service the telemetry handler registers under.
const ServiceName = "telemetry"
