package trace

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the typed metrics registry of a Recorder: monotonic counters,
// gauges maintained as bounded time-ordered series, and log-bucketed latency
// histograms with quantile extraction. Instruments are created on first use
// and live for the registry's lifetime, so hot paths resolve a handle once
// and update it lock-free (counters) or under a per-instrument mutex.
//
// Names follow the Prometheus convention and may carry inline labels built
// with LabeledName ("qfw_serve_cache_hits_total{backend=\"aer\"}"); the
// exposition writer groups same-base instruments under one # TYPE header.
type Metrics struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// LabeledName renders a Prometheus-style metric name with inline labels:
// LabeledName("qfw_qpm_tasks_total", "backend", "aer") yields
// `qfw_qpm_tasks_total{backend="aer"}`. Pairs are emitted in argument order.
func LabeledName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(kv[i+1])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// splitLabeled splits a LabeledName back into base and label body ("" when
// unlabeled) so derived metrics (_peak, _bucket, quantiles) can be named.
func splitLabeled(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// Counter returns (creating on first use) the named monotonic counter.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.RLock()
	c, ok := m.counters[name]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok = m.counters[name]; !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (creating on first use) the named gauge series.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.RLock()
	g, ok := m.gauges[name]
	m.mu.RUnlock()
	if ok {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g, ok = m.gauges[name]; !ok {
		g = newGauge(defaultGaugeSamples)
		m.gauges[name] = g
	}
	return g
}

// LookupGauge returns the named gauge or nil, without creating it.
func (m *Metrics) LookupGauge(name string) *Gauge {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.gauges[name]
}

// Histogram returns (creating on first use) the named latency histogram.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.RLock()
	h, ok := m.histograms[name]
	m.mu.RUnlock()
	if ok {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok = m.histograms[name]; !ok {
		h = newHistogram()
		m.histograms[name] = h
	}
	return h
}

// sortedKeys returns the instrument names in sorted order — the
// exposition writer depends on a deterministic walk.
func sortedKeys[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ---- Counter ----------------------------------------------------------

// Counter is a monotonic event count. Updates are atomic, so hot paths
// increment without locking.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters are monotonic).
func (c *Counter) Add(n int64) {
	if !Enabled() || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// ---- Gauge ------------------------------------------------------------

// defaultGaugeSamples bounds the retained samples of one gauge series.
const defaultGaugeSamples = 512

// Sample is one retained gauge observation.
type Sample struct {
	T time.Time
	V float64
}

// Gauge is an instantaneous measurement maintained as a bounded
// time-ordered series. The running aggregates (count, last, min, max, sum)
// are exact over every observation; the retained series is downsampled by
// stride decimation — when the buffer fills, every second sample is dropped
// and the recording stride doubles, so memory stays flat while the series
// keeps spanning the full session.
type Gauge struct {
	mu      sync.Mutex
	cap     int
	stride  int // record every stride-th observation
	skip    int // observations until the next retained sample
	samples []Sample

	count     int64
	last, sum float64
	min, max  float64
	seen      bool
}

func newGauge(capacity int) *Gauge {
	if capacity < 4 {
		capacity = 4
	}
	return &Gauge{cap: capacity, stride: 1}
}

// Record observes one value at the current time.
func (g *Gauge) Record(v float64) {
	if !Enabled() {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.count++
	g.last = v
	g.sum += v
	if !g.seen || v < g.min {
		g.min = v
	}
	if !g.seen || v > g.max {
		g.max = v
	}
	g.seen = true
	if g.skip > 0 {
		g.skip--
		return
	}
	g.samples = append(g.samples, Sample{T: time.Now(), V: v})
	g.skip = g.stride - 1
	if len(g.samples) >= g.cap {
		// Decimate: keep every second sample and double the stride. The
		// series stays time-ordered and spans the whole session at half
		// the resolution.
		half := g.samples[:0]
		for i := 0; i < len(g.samples); i += 2 {
			half = append(half, g.samples[i])
		}
		g.samples = half
		g.stride *= 2
	}
}

// Values returns the retained sample values in time order.
func (g *Gauge) Values() []float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]float64, len(g.samples))
	for i, s := range g.samples {
		out[i] = s.V
	}
	return out
}

// Series returns a copy of the retained (time, value) samples in time order.
func (g *Gauge) Series() []Sample {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Sample(nil), g.samples...)
}

// SampleCount returns the number of retained samples (bounded by the
// series capacity regardless of how many observations were recorded).
func (g *Gauge) SampleCount() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.samples)
}

// Count returns the exact number of observations.
func (g *Gauge) Count() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.count
}

// Last returns the most recent observation (0 when unseen).
func (g *Gauge) Last() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.last
}

// Max returns the exact peak observation (0 when unseen) — exact even
// after the retained series has been downsampled.
func (g *Gauge) Max() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.seen {
		return 0
	}
	return g.max
}

// Min returns the exact minimum observation (0 when unseen).
func (g *Gauge) Min() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.seen {
		return 0
	}
	return g.min
}

// Mean returns the exact mean over every observation (0 when unseen).
func (g *Gauge) Mean() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.count == 0 {
		return 0
	}
	return g.sum / float64(g.count)
}

// ---- Histogram --------------------------------------------------------

// Histogram buckets are geometric with ratio sqrt(2) from 1µs to ~1min
// (values in milliseconds), so any quantile estimate is within a factor
// sqrt(2) of the exact order statistic across nine decades of latency.
var histBounds = func() []float64 {
	const (
		base  = 1e-3 // 1µs in ms
		limit = 6e4  // 1min in ms
	)
	ratio := math.Sqrt2
	var bounds []float64
	for b := base; b <= limit; b *= ratio {
		bounds = append(bounds, b)
	}
	return bounds
}()

// HistogramBounds returns the shared bucket upper bounds (milliseconds);
// bucket i covers (bounds[i-1], bounds[i]], with an implicit overflow
// bucket past the last bound. Tests use it to build reference histograms.
func HistogramBounds() []float64 {
	return append([]float64(nil), histBounds...)
}

// bucketOf maps a value to its bucket index (len(histBounds) = overflow).
func bucketOf(v float64) int {
	i := sort.SearchFloat64s(histBounds, v)
	return i // SearchFloat64s returns the first i with bounds[i] >= v
}

// Histogram is a log-bucketed latency distribution (milliseconds) with
// exact count/sum/max and p50/p90/p99 extraction. Observations are O(log
// buckets); memory is a fixed bucket array.
type Histogram struct {
	mu     sync.Mutex
	counts []int64
	count  int64
	sum    float64
	max    float64
}

func newHistogram() *Histogram {
	return &Histogram{counts: make([]int64, len(histBounds)+1)}
}

// Observe records one latency in milliseconds (negative values clamp to 0).
func (h *Histogram) Observe(ms float64) {
	if !Enabled() {
		return
	}
	if ms < 0 {
		ms = 0
	}
	idx := bucketOf(ms)
	h.mu.Lock()
	h.counts[idx]++
	h.count++
	h.sum += ms
	if ms > h.max {
		h.max = ms
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations (ms).
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the largest observation (ms).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns the p-quantile (p in (0,1]) as the upper bound of the
// bucket holding the nearest-rank order statistic — an estimate within a
// factor sqrt(2) above the exact value. The overflow bucket reports the
// exact maximum. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(p * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(histBounds) {
				return histBounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// histSnapshot is a consistent copy for the exposition writer.
type histSnapshot struct {
	counts []int64
	count  int64
	sum    float64
	max    float64
}

func (h *Histogram) snapshot() histSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return histSnapshot{
		counts: append([]int64(nil), h.counts...),
		count:  h.count,
		sum:    h.sum,
		max:    h.max,
	}
}
