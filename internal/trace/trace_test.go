package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder()
	t0 := r.Epoch()
	r.Record("b", "w1", t0.Add(10*time.Millisecond), t0.Add(20*time.Millisecond), nil)
	r.Record("a", "w0", t0, t0.Add(5*time.Millisecond), map[string]string{"k": "v"})
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events %d", len(ev))
	}
	if ev[0].Name != "a" {
		t.Fatalf("not sorted by start: %v", ev)
	}
	if ev[0].Duration() != 5*time.Millisecond {
		t.Fatalf("duration %v", ev[0].Duration())
	}
	if r.Len() != 2 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestSpan(t *testing.T) {
	r := NewRecorder()
	done := r.Span("op", "w")
	time.Sleep(2 * time.Millisecond)
	done()
	ev := r.Events()
	if len(ev) != 1 || ev[0].Duration() <= 0 {
		t.Fatalf("span not recorded: %v", ev)
	}
}

func TestMaxConcurrency(t *testing.T) {
	r := NewRecorder()
	t0 := r.Epoch()
	// Three overlapping sub-qaoa spans, one disjoint.
	r.Record("subqaoa-0", "w0", t0, t0.Add(10*time.Millisecond), nil)
	r.Record("subqaoa-1", "w1", t0.Add(2*time.Millisecond), t0.Add(12*time.Millisecond), nil)
	r.Record("subqaoa-2", "w2", t0.Add(4*time.Millisecond), t0.Add(14*time.Millisecond), nil)
	r.Record("subqaoa-3", "w3", t0.Add(20*time.Millisecond), t0.Add(30*time.Millisecond), nil)
	r.Record("other", "w4", t0, t0.Add(50*time.Millisecond), nil)
	if got := r.MaxConcurrency("subqaoa"); got != 3 {
		t.Fatalf("max concurrency %d, want 3", got)
	}
	if got := r.MaxConcurrency("other"); got != 1 {
		t.Fatalf("other concurrency %d", got)
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder()
	t0 := r.Epoch()
	r.Record("iter", "nwqsim-0", t0, t0.Add(10*time.Millisecond), nil)
	r.Record("iter", "ionq-0", t0.Add(5*time.Millisecond), t0.Add(40*time.Millisecond), nil)
	out := r.Timeline(40)
	if !strings.Contains(out, "nwqsim-0") || !strings.Contains(out, "ionq-0") {
		t.Fatalf("timeline missing workers:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("timeline has no bars:\n%s", out)
	}
	if NewRecorder().Timeline(40) != "(no events)\n" {
		t.Fatal("empty recorder rendering wrong")
	}
}
