package trace

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRecordAndEvents(t *testing.T) {
	r := NewRecorder()
	t0 := r.Epoch()
	r.Record("b", "w1", t0.Add(10*time.Millisecond), t0.Add(20*time.Millisecond), nil)
	r.Record("a", "w0", t0, t0.Add(5*time.Millisecond), map[string]string{"k": "v"})
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events %d", len(ev))
	}
	if ev[0].Name != "a" {
		t.Fatalf("not sorted by start: %v", ev)
	}
	if ev[0].Duration() != 5*time.Millisecond {
		t.Fatalf("duration %v", ev[0].Duration())
	}
	if r.Len() != 2 {
		t.Fatalf("len %d", r.Len())
	}
}

func TestSpan(t *testing.T) {
	r := NewRecorder()
	done := r.Span("op", "w")
	time.Sleep(2 * time.Millisecond)
	done()
	ev := r.Events()
	if len(ev) != 1 || ev[0].Duration() <= 0 {
		t.Fatalf("span not recorded: %v", ev)
	}
}

func TestMaxConcurrency(t *testing.T) {
	r := NewRecorder()
	t0 := r.Epoch()
	// Three overlapping sub-qaoa spans, one disjoint.
	r.Record("subqaoa-0", "w0", t0, t0.Add(10*time.Millisecond), nil)
	r.Record("subqaoa-1", "w1", t0.Add(2*time.Millisecond), t0.Add(12*time.Millisecond), nil)
	r.Record("subqaoa-2", "w2", t0.Add(4*time.Millisecond), t0.Add(14*time.Millisecond), nil)
	r.Record("subqaoa-3", "w3", t0.Add(20*time.Millisecond), t0.Add(30*time.Millisecond), nil)
	r.Record("other", "w4", t0, t0.Add(50*time.Millisecond), nil)
	if got := r.MaxConcurrency("subqaoa"); got != 3 {
		t.Fatalf("max concurrency %d, want 3", got)
	}
	if got := r.MaxConcurrency("other"); got != 1 {
		t.Fatalf("other concurrency %d", got)
	}
}

func TestRingBoundAndDrops(t *testing.T) {
	r := NewRecorderCap(8)
	t0 := r.Epoch()
	for i := 0; i < 100; i++ {
		s := t0.Add(time.Duration(i) * time.Millisecond)
		r.Record(fmt.Sprintf("op-%d", i), "w", s, s.Add(time.Millisecond), nil)
	}
	if r.Len() != 8 {
		t.Fatalf("ring retained %d events, want 8", r.Len())
	}
	st := r.Stats()
	if st.Capacity != 8 || st.Recorded != 100 || st.Dropped != 92 || st.Retained != 8 {
		t.Fatalf("stats %+v", st)
	}
	if st.Recorded != st.Dropped+int64(st.Retained) {
		t.Fatalf("accounting broken: %+v", st)
	}
	// The survivors are the newest spans, and Events still sorts them by
	// start even though the ring storage has wrapped out of order.
	ev := r.Events()
	if len(ev) != 8 || ev[0].Name != "op-92" || ev[7].Name != "op-99" {
		t.Fatalf("retained window wrong: %v ... %v", ev[0].Name, ev[len(ev)-1].Name)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Start.Before(ev[i-1].Start) {
			t.Fatalf("events out of start order at %d", i)
		}
	}
}

func TestDisabledSurfaceIsNoOp(t *testing.T) {
	SetEnabled(false)
	t.Cleanup(func() { SetEnabled(true) })
	r := NewRecorder()
	t0 := r.Epoch()
	r.Record("op", "w", t0, t0.Add(time.Millisecond), nil)
	r.Span("span", "w")()
	m := r.Metrics()
	m.Counter("c_total").Inc()
	m.Gauge("g").Record(3)
	m.Histogram("h_ms").Observe(5)
	if r.Len() != 0 || r.Stats().Recorded != 0 {
		t.Fatalf("disabled recorder accepted spans: %+v", r.Stats())
	}
	if m.Counter("c_total").Value() != 0 {
		t.Fatal("disabled counter advanced")
	}
	if g := m.Gauge("g"); g.Count() != 0 || g.SampleCount() != 0 {
		t.Fatal("disabled gauge recorded")
	}
	if m.Histogram("h_ms").Count() != 0 {
		t.Fatal("disabled histogram observed")
	}

	SetEnabled(true)
	r.Record("op", "w", t0, t0.Add(time.Millisecond), nil)
	m.Counter("c_total").Inc()
	if r.Len() != 1 || m.Counter("c_total").Value() != 1 {
		t.Fatal("re-enabled surface still inert")
	}
}

// TestRecorderSoakMemoryFlat drives 100k spans through a small ring and
// checks both the accounting (everything counted, only cap retained) and
// that heap growth stays bounded by the ring, not the traffic.
func TestRecorderSoakMemoryFlat(t *testing.T) {
	const (
		cap  = 1024
		soak = 100000
	)
	r := NewRecorderCap(cap)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < soak; i++ {
		r.Record("soak", "w", start, start.Add(time.Microsecond), nil)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)

	st := r.Stats()
	if st.Recorded != soak || st.Retained != cap || st.Dropped != soak-cap {
		t.Fatalf("soak accounting %+v", st)
	}
	if got := len(r.Events()); got != cap {
		t.Fatalf("events %d, want %d", got, cap)
	}
	// The ring itself is ~100KB; anything near the traffic volume means
	// events leaked past the bound.
	if growth := int64(after.HeapAlloc) - int64(before.HeapAlloc); growth > 4<<20 {
		t.Fatalf("heap grew %d bytes over a %d-span soak (ring cap %d)", growth, soak, cap)
	}
}

func TestTimelineFiltersInstantaneousEvents(t *testing.T) {
	r := NewRecorder()
	t0 := r.Epoch()
	r.Record("span", "worker-a", t0, t0.Add(10*time.Millisecond), nil)
	r.Record("instant", "worker-b", t0.Add(5*time.Millisecond), t0.Add(5*time.Millisecond), nil)
	out := r.Timeline(40)
	if !strings.Contains(out, "worker-a") {
		t.Fatalf("timeline lost the real span:\n%s", out)
	}
	if strings.Contains(out, "worker-b") {
		t.Fatalf("zero-duration event drew a timeline row:\n%s", out)
	}

	only := NewRecorder()
	only.Record("instant", "w", t0, t0, nil)
	if got := only.Timeline(40); got != "(no events)\n" {
		t.Fatalf("all-instantaneous recorder rendered bars:\n%s", got)
	}
}

func TestTimelineRendering(t *testing.T) {
	r := NewRecorder()
	t0 := r.Epoch()
	r.Record("iter", "nwqsim-0", t0, t0.Add(10*time.Millisecond), nil)
	r.Record("iter", "ionq-0", t0.Add(5*time.Millisecond), t0.Add(40*time.Millisecond), nil)
	out := r.Timeline(40)
	if !strings.Contains(out, "nwqsim-0") || !strings.Contains(out, "ionq-0") {
		t.Fatalf("timeline missing workers:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("timeline has no bars:\n%s", out)
	}
	if NewRecorder().Timeline(40) != "(no events)\n" {
		t.Fatal("empty recorder rendering wrong")
	}
}
