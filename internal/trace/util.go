package trace

import (
	"sync"
	"time"
)

// utilSource is one watched busy-time counter.
type utilSource struct {
	gauge    string
	slots    int
	busyNS   func() int64
	prevBusy int64
	prevT    time.Time
}

// UtilSampler turns cumulative busy-time counters into per-backend
// device-utilization time series: every window it reads each source's
// busy nanoseconds, computes the busy fraction of the elapsed wall time
// across the source's slots (workers or dispatch lanes), and records it
// as a gauge sample — the QCloudSim-style utilization trace the serving
// layer's telemetry was missing.
type UtilSampler struct {
	met    *Metrics
	window time.Duration

	mu      sync.Mutex
	sources []*utilSource
	started bool
	stop    chan struct{}
	done    chan struct{}
}

// NewUtilSampler builds a sampler recording into the given registry every
// window (<= 0 selects one second).
func NewUtilSampler(m *Metrics, window time.Duration) *UtilSampler {
	if window <= 0 {
		window = time.Second
	}
	return &UtilSampler{met: m, window: window, stop: make(chan struct{}), done: make(chan struct{})}
}

// Watch adds a busy-time source: gauge is the series name (conventionally
// LabeledName("qfw_utilization", "backend", name)), slots the number of
// parallel lanes the busy time accumulates across, and busyNS a cumulative
// busy-nanoseconds reader. Sources may be added after Start.
func (u *UtilSampler) Watch(gauge string, slots int, busyNS func() int64) {
	if slots <= 0 {
		slots = 1
	}
	u.mu.Lock()
	u.sources = append(u.sources, &utilSource{
		gauge: gauge, slots: slots, busyNS: busyNS,
		prevBusy: busyNS(), prevT: time.Now(),
	})
	u.mu.Unlock()
}

// Sample performs one sampling pass over every source — called by the
// Start loop each window, and directly by tests that need deterministic
// sample counts.
func (u *UtilSampler) Sample() {
	u.mu.Lock()
	sources := append([]*utilSource(nil), u.sources...)
	u.mu.Unlock()
	now := time.Now()
	for _, src := range sources {
		wall := now.Sub(src.prevT)
		if wall <= 0 {
			continue
		}
		cur := src.busyNS()
		frac := float64(cur-src.prevBusy) / (float64(wall) * float64(src.slots))
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		src.prevBusy = cur
		src.prevT = now
		u.met.Gauge(src.gauge).Record(frac)
	}
}

// Start launches the periodic sampling loop; Stop ends it.
func (u *UtilSampler) Start() {
	u.mu.Lock()
	if u.started {
		u.mu.Unlock()
		return
	}
	u.started = true
	u.mu.Unlock()
	go func() {
		defer close(u.done)
		ticker := time.NewTicker(u.window)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				u.Sample()
			case <-u.stop:
				return
			}
		}
	}()
}

// Stop halts the sampling loop after recording one final sample, so even
// a short-lived session leaves a utilization data point behind.
func (u *UtilSampler) Stop() {
	u.mu.Lock()
	started := u.started
	u.started = false
	u.mu.Unlock()
	if !started {
		return
	}
	close(u.stop)
	<-u.done
	u.Sample()
	u.stop = make(chan struct{})
	u.done = make(chan struct{})
}
