// Package optimize provides the classical optimizers of the hybrid loops:
// derivative-free Nelder-Mead and SPSA for variational parameter updates,
// plus simulated annealing and exact brute force over QUBOs — the latter two
// standing in for the D-Wave hybrid annealing solver the paper references
// QAOA solution fidelity against (Fig. 3f).
package optimize

import (
	"math"
	"math/rand"
	"sort"

	"qfw/internal/qubo"
)

// Objective is a function to minimize.
type Objective func(x []float64) float64

// NMOptions tune Nelder-Mead.
type NMOptions struct {
	MaxEvals int     // default 200
	InitStep float64 // simplex size, default 0.5
	Tol      float64 // spread tolerance, default 1e-6

	// Target, when HasTarget is set, stops the search as soon as the best
	// vertex reaches it — the equal-convergence-target mode shared with the
	// gradient optimizers.
	Target    float64
	HasTarget bool
}

// NelderMead minimizes f starting from x0 with the standard
// reflection/expansion/contraction/shrink simplex method. It returns the
// best point, its value, and the number of function evaluations used.
func NelderMead(f Objective, x0 []float64, opts NMOptions) ([]float64, float64, int) {
	n := len(x0)
	if opts.MaxEvals <= 0 {
		opts.MaxEvals = 200
	}
	if opts.InitStep == 0 {
		opts.InitStep = 0.5
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}
	simplex := make([]vertex, n+1)
	simplex[0] = vertex{append([]float64(nil), x0...), eval(x0)}
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		x[i] += opts.InitStep
		simplex[i+1] = vertex{x, eval(x)}
	}
	sortSimplex := func() {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	}
	for evals < opts.MaxEvals {
		sortSimplex()
		if opts.HasTarget && simplex[0].f <= opts.Target {
			break
		}
		if simplex[n].f-simplex[0].f < opts.Tol {
			break
		}
		// Centroid of all but worst.
		cen := make([]float64, n)
		for _, v := range simplex[:n] {
			for i := range cen {
				cen[i] += v.x[i] / float64(n)
			}
		}
		worst := simplex[n]
		reflect := make([]float64, n)
		for i := range reflect {
			reflect[i] = cen[i] + (cen[i] - worst.x[i])
		}
		fr := eval(reflect)
		switch {
		case fr < simplex[0].f:
			// Try expansion.
			expand := make([]float64, n)
			for i := range expand {
				expand[i] = cen[i] + 2*(cen[i]-worst.x[i])
			}
			fe := eval(expand)
			if fe < fr {
				simplex[n] = vertex{expand, fe}
			} else {
				simplex[n] = vertex{reflect, fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{reflect, fr}
		default:
			// Contraction.
			contract := make([]float64, n)
			for i := range contract {
				contract[i] = cen[i] + 0.5*(worst.x[i]-cen[i])
			}
			fc := eval(contract)
			if fc < worst.f {
				simplex[n] = vertex{contract, fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= n; i++ {
					for k := range simplex[i].x {
						simplex[i].x[k] = simplex[0].x[k] + 0.5*(simplex[i].x[k]-simplex[0].x[k])
					}
					simplex[i].f = eval(simplex[i].x)
					if evals >= opts.MaxEvals {
						break
					}
				}
			}
		}
	}
	sortSimplex()
	return simplex[0].x, simplex[0].f, evals
}

// BatchObjective evaluates a set of candidate points in one shot — the
// hook variational loops use to ship a whole candidate set as one batched
// circuit submission.
type BatchObjective func(xs [][]float64) []float64

// NelderMeadBatch is the batch-evaluated variant of NelderMead: every
// function evaluation the serial method would issue one-by-one is grouped
// into candidate batches. The initial simplex (n+1 points) is one batch;
// each iteration speculatively evaluates reflection, expansion, and
// contraction together (all three depend only on the current simplex, not
// on each other's values) as one batch of three; a shrink step batches its
// n replacement vertices. The method spends slightly more evaluations per
// iteration than the serial variant but needs one round trip where the
// serial loop needs up to three — the per-task-overhead trade the paper's
// timeline analysis motivates.
// MaxEvals is the serial-equivalent budget: a serial iteration costs ~2
// evaluations where a speculative batch costs 3, so the batch variant
// spends up to 1.5x raw evaluations to reach the same iteration count (the
// extra candidates ride along free inside an already-paid round trip).
func NelderMeadBatch(f BatchObjective, x0 []float64, opts NMOptions) ([]float64, float64, int) {
	n := len(x0)
	if opts.MaxEvals <= 0 {
		opts.MaxEvals = 200
	}
	budget := opts.MaxEvals + opts.MaxEvals/2
	if opts.InitStep == 0 {
		opts.InitStep = 0.5
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	type vertex struct {
		x []float64
		f float64
	}
	evals := 0
	evalAll := func(xs [][]float64) []float64 {
		evals += len(xs)
		return f(xs)
	}
	points := make([][]float64, n+1)
	points[0] = append([]float64(nil), x0...)
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		x[i] += opts.InitStep
		points[i+1] = x
	}
	fs := evalAll(points)
	simplex := make([]vertex, n+1)
	for i := range simplex {
		simplex[i] = vertex{points[i], fs[i]}
	}
	sortSimplex := func() {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	}
	for evals < budget {
		sortSimplex()
		if opts.HasTarget && simplex[0].f <= opts.Target {
			break
		}
		if simplex[n].f-simplex[0].f < opts.Tol {
			break
		}
		cen := make([]float64, n)
		for _, v := range simplex[:n] {
			for i := range cen {
				cen[i] += v.x[i] / float64(n)
			}
		}
		worst := simplex[n]
		reflect := make([]float64, n)
		expand := make([]float64, n)
		contract := make([]float64, n)
		for i := range reflect {
			reflect[i] = cen[i] + (cen[i] - worst.x[i])
			expand[i] = cen[i] + 2*(cen[i]-worst.x[i])
			contract[i] = cen[i] + 0.5*(worst.x[i]-cen[i])
		}
		vals := evalAll([][]float64{reflect, expand, contract})
		fr, fe, fc := vals[0], vals[1], vals[2]
		switch {
		case fr < simplex[0].f:
			if fe < fr {
				simplex[n] = vertex{expand, fe}
			} else {
				simplex[n] = vertex{reflect, fr}
			}
		case fr < simplex[n-1].f:
			simplex[n] = vertex{reflect, fr}
		default:
			if fc < worst.f {
				simplex[n] = vertex{contract, fc}
			} else {
				// Shrink toward the best vertex: one batch of n points.
				shrunk := make([][]float64, n)
				for i := 1; i <= n; i++ {
					x := make([]float64, n)
					for k := range x {
						x[k] = simplex[0].x[k] + 0.5*(simplex[i].x[k]-simplex[0].x[k])
					}
					shrunk[i-1] = x
				}
				sf := evalAll(shrunk)
				for i := 1; i <= n; i++ {
					simplex[i] = vertex{shrunk[i-1], sf[i-1]}
				}
			}
		}
	}
	sortSimplex()
	return simplex[0].x, simplex[0].f, evals
}

// SPSA minimizes f with simultaneous-perturbation stochastic approximation,
// the standard optimizer for noisy (shot-sampled) objectives.
func SPSA(f Objective, x0 []float64, iters int, rng *rand.Rand) ([]float64, float64) {
	if iters <= 0 {
		iters = 100
	}
	x := append([]float64(nil), x0...)
	n := len(x)
	const a0, c0, alpha, gamma = 0.2, 0.15, 0.602, 0.101
	for k := 1; k <= iters; k++ {
		ak := a0 / math.Pow(float64(k), alpha)
		ck := c0 / math.Pow(float64(k), gamma)
		delta := make([]float64, n)
		for i := range delta {
			if rng.Intn(2) == 0 {
				delta[i] = 1
			} else {
				delta[i] = -1
			}
		}
		xp := make([]float64, n)
		xm := make([]float64, n)
		for i := range x {
			xp[i] = x[i] + ck*delta[i]
			xm[i] = x[i] - ck*delta[i]
		}
		g := (f(xp) - f(xm)) / (2 * ck)
		for i := range x {
			x[i] -= ak * g / delta[i]
		}
	}
	return x, f(x)
}

// SimulatedAnnealing minimizes a QUBO with single-bit-flip Metropolis moves
// over a geometric temperature schedule. This is the classical reference
// solver standing in for the D-Wave hybrid annealer in fidelity comparisons.
func SimulatedAnnealing(q *qubo.QUBO, sweeps int, rng *rand.Rand) ([]int, float64) {
	if sweeps <= 0 {
		sweeps = 200
	}
	bits := make([]int, q.N)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	energy := q.Energy(bits)
	best := append([]int(nil), bits...)
	bestE := energy
	tHot, tCold := 2.0, 0.01
	for s := 0; s < sweeps; s++ {
		frac := float64(s) / float64(sweeps-1+1)
		temp := tHot * math.Pow(tCold/tHot, frac)
		for i := 0; i < q.N; i++ {
			// Energy delta of flipping bit i: E = x^T Q x.
			delta := flipDelta(q, bits, i)
			if delta <= 0 || rng.Float64() < math.Exp(-delta/temp) {
				bits[i] ^= 1
				energy += delta
				if energy < bestE {
					bestE = energy
					copy(best, bits)
				}
			}
		}
	}
	return best, bestE
}

// flipDelta returns E(x with bit i flipped) - E(x) in O(N).
func flipDelta(q *qubo.QUBO, bits []int, i int) float64 {
	// Contribution of variable i: Q_ii x_i + 2 x_i Σ_{j!=i} Q_ij x_j.
	var cross float64
	for j := 0; j < q.N; j++ {
		if j != i && bits[j] == 1 {
			cross += q.Q[i][j]
		}
	}
	cur := 0.0
	if bits[i] == 1 {
		cur = q.Q[i][i] + 2*cross
	}
	next := 0.0
	if bits[i] == 0 {
		next = q.Q[i][i] + 2*cross
	}
	return next - cur
}

// BruteForce finds the exact minimum of a QUBO by enumeration (N <= 22).
func BruteForce(q *qubo.QUBO) ([]int, float64) {
	if q.N > 22 {
		panic("optimize: brute force beyond 22 variables")
	}
	best := make([]int, q.N)
	bits := make([]int, q.N)
	bestE := math.Inf(1)
	for mask := 0; mask < 1<<uint(q.N); mask++ {
		for i := 0; i < q.N; i++ {
			bits[i] = (mask >> uint(i)) & 1
		}
		if e := q.Energy(bits); e < bestE {
			bestE = e
			copy(best, bits)
		}
	}
	return best, bestE
}

// Reference returns the best-known solution for fidelity comparisons:
// exact for small instances, simulated annealing with generous sweeps
// otherwise (the D-Wave stand-in).
func Reference(q *qubo.QUBO, rng *rand.Rand) ([]int, float64) {
	if q.N <= 20 {
		return BruteForce(q)
	}
	return SimulatedAnnealing(q, 600, rng)
}

// SolutionQuality maps an achieved energy onto [0, 1] against the reference
// best and the worst sampled energy: 1 means optimal. This is the fidelity
// metric reported in Fig. 3f (referenced there to a D-Wave solver).
func SolutionQuality(achieved, best, worst float64) float64 {
	if worst <= best {
		return 1
	}
	fid := (worst - achieved) / (worst - best)
	if fid < 0 {
		return 0
	}
	if fid > 1 {
		return 1
	}
	return fid
}
