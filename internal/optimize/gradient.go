package optimize

import (
	"math"
	"math/rand"
)

// Gradient-based optimizers for the analytic-gradient hybrid loops. Both
// take the batched hook (one round trip per call, like NelderMeadBatch):
// the variational solvers implement it with one adjoint-gradient batch or
// one parameter-shift RunBatch submission per optimizer step.

// GradObjective evaluates the objective and its gradient at one point.
type GradObjective func(x []float64) (float64, []float64)

// BatchGradObjective evaluates values and gradients for a whole candidate
// set in one round trip.
type BatchGradObjective func(xs [][]float64) ([]float64, [][]float64)

// GradOptions tune the gradient-based optimizers. MaxIters bounds gradient
// evaluations (the caller converts its circuit-evaluation budget using the
// per-gradient cost of the chosen differentiation method). Target, when
// HasTarget is set, stops the run as soon as the objective reaches it — the
// equal-convergence-target mode of the gradient ablation.
type GradOptions struct {
	MaxIters  int     // default 100
	LR        float64 // Adam: step size (default 0.1); GD: initial step (default 1.0)
	Tol       float64 // stop when the gradient inf-norm drops below (default 1e-8)
	Target    float64 // stop once value <= Target (requires HasTarget)
	HasTarget bool

	// Adam moment decay and stabilizer knobs.
	Beta1, Beta2, Eps float64 // defaults 0.9, 0.999, 1e-8

	// Line, when non-nil, evaluates value-only candidate batches for the
	// Armijo search (cheaper than the gradient hook on adjoint backends);
	// GradientDescent falls back to the gradient hook without it.
	Line BatchObjective

	// C1 is the Armijo sufficient-decrease constant (default 1e-4).
	C1 float64
}

func (o *GradOptions) defaults(adam bool) {
	if o.MaxIters <= 0 {
		o.MaxIters = 100
	}
	if o.LR <= 0 {
		if adam {
			o.LR = 0.1
		} else {
			o.LR = 1.0
		}
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.Beta1 <= 0 {
		o.Beta1 = 0.9
	}
	if o.Beta2 <= 0 {
		o.Beta2 = 0.999
	}
	if o.Eps <= 0 {
		o.Eps = 1e-8
	}
	if o.C1 <= 0 {
		o.C1 = 1e-4
	}
}

func infNorm(g []float64) float64 {
	mx := 0.0
	for _, v := range g {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Adam minimizes f with the Adam update rule, one gradient evaluation per
// iteration. It returns the best point seen, its value, and the number of
// gradient evaluations used.
func Adam(f BatchGradObjective, x0 []float64, opts GradOptions) ([]float64, float64, int) {
	return AdamPopulation(f, [][]float64{x0}, opts)
}

// AdamPopulation minimizes f over a population of starting points evolved
// in lock-step: every iteration ships the whole population's gradients as
// one batched call (one RunGradient submission on the adjoint backends) and
// applies an independent Adam update per member. Gradient descent from a
// single start can settle into a worse basin than a simplex method's
// multi-point search; a small population restores that robustness while the
// batch pipeline keeps the round-trip count identical to single-start. The
// run stops as soon as the best member reaches the target (or every member
// flattens), and returns the best point, its value, and the number of
// gradient evaluations (population × iterations).
func AdamPopulation(f BatchGradObjective, starts [][]float64, opts GradOptions) ([]float64, float64, int) {
	opts.defaults(true)
	pop := len(starts)
	if pop == 0 {
		return nil, math.Inf(1), 0
	}
	n := len(starts[0])
	xs := make([][]float64, pop)
	ms := make([][]float64, pop)
	vs := make([][]float64, pop)
	for p := range starts {
		xs[p] = append([]float64(nil), starts[p]...)
		ms[p] = make([]float64, n)
		vs[p] = make([]float64, n)
	}
	best := append([]float64(nil), starts[0]...)
	bestF := math.Inf(1)
	evals := 0
	for k := 1; k <= opts.MaxIters; k++ {
		vals, grads := f(xs)
		evals += pop
		flat := true
		for p := range xs {
			if vals[p] < bestF {
				bestF = vals[p]
				copy(best, xs[p])
			}
			if infNorm(grads[p]) >= opts.Tol {
				flat = false
			}
		}
		if (opts.HasTarget && bestF <= opts.Target) || flat {
			break
		}
		b1k := 1 - math.Pow(opts.Beta1, float64(k))
		b2k := 1 - math.Pow(opts.Beta2, float64(k))
		for p := range xs {
			x, m, v, g := xs[p], ms[p], vs[p], grads[p]
			for i := range x {
				m[i] = opts.Beta1*m[i] + (1-opts.Beta1)*g[i]
				v[i] = opts.Beta2*v[i] + (1-opts.Beta2)*g[i]*g[i]
				x[i] -= opts.LR * (m[i] / b1k) / (math.Sqrt(v[i]/b2k) + opts.Eps)
			}
		}
	}
	return best, bestF, evals
}

// GradientDescent minimizes f by steepest descent with Armijo backtracking:
// each iteration takes one gradient evaluation at the iterate and one
// value-only candidate batch covering a geometric ladder of step sizes, so
// the whole line search costs a single round trip. The accepted step seeds
// the next iteration's ladder (doubled), giving the method a cheap
// trust-region memory. Returns the best point, its value, and the number of
// gradient evaluations (line-search batches are counted by the caller
// through its Line hook).
func GradientDescent(f BatchGradObjective, x0 []float64, opts GradOptions) ([]float64, float64, int) {
	opts.defaults(false)
	const ladder = 4 // step candidates per Armijo batch
	x := append([]float64(nil), x0...)
	best := append([]float64(nil), x0...)
	bestF := math.Inf(1)
	evals := 0
	step := opts.LR
	for k := 0; k < opts.MaxIters; k++ {
		vals, grads := f([][]float64{x})
		evals++
		fx, g := vals[0], grads[0]
		if fx < bestF {
			bestF = fx
			copy(best, x)
		}
		gnorm2 := 0.0
		for _, v := range g {
			gnorm2 += v * v
		}
		if (opts.HasTarget && fx <= opts.Target) || math.Sqrt(gnorm2) < opts.Tol {
			break
		}
		cands := make([][]float64, ladder)
		steps := make([]float64, ladder)
		t := step
		for j := 0; j < ladder; j++ {
			steps[j] = t
			c := make([]float64, len(x))
			for i := range x {
				c[i] = x[i] - t*g[i]
			}
			cands[j] = c
			t /= 4
		}
		var cvals []float64
		if opts.Line != nil {
			cvals = opts.Line(cands)
		} else {
			cvals, _ = f(cands)
			evals += ladder
		}
		// Ladder candidates are paid-for evaluations: record them against
		// the running best and honor the target stop before deciding the
		// step, so a winning candidate is never discarded on MaxIters.
		for j := 0; j < ladder; j++ {
			if cvals[j] < bestF {
				bestF = cvals[j]
				copy(best, cands[j])
			}
		}
		if opts.HasTarget && bestF <= opts.Target {
			break
		}
		accepted := -1
		for j := 0; j < ladder; j++ { // largest step first
			if cvals[j] <= fx-opts.C1*steps[j]*gnorm2 {
				accepted = j
				break
			}
		}
		if accepted < 0 {
			// No candidate decreased enough: take the best anyway if it
			// improves at all, else shrink the ladder and retry.
			for j := 0; j < ladder; j++ {
				if cvals[j] < fx && (accepted < 0 || cvals[j] < cvals[accepted]) {
					accepted = j
				}
			}
			if accepted < 0 {
				step /= 16
				if step < 1e-12 {
					break
				}
				continue
			}
		}
		copy(x, cands[accepted])
		step = 2 * steps[accepted]
	}
	return best, bestF, evals
}

// SPSABatch is the batch-evaluated variant of SPSA: each iteration ships
// the whole simultaneous-perturbation population — `pairs` (+,−)
// perturbation pairs plus the current iterate — through BatchObjective as
// one round trip, averages the per-pair gradient estimators, and applies
// the standard gain-sequence update. More pairs per step trade extra
// (already-batched) evaluations for a lower-variance gradient, mirroring
// how NelderMeadBatch spends batched evaluations on speculative candidates.
// Returns the best point seen and its value.
func SPSABatch(f BatchObjective, x0 []float64, iters, pairs int, rng *rand.Rand) ([]float64, float64) {
	if iters <= 0 {
		iters = 100
	}
	if pairs <= 0 {
		pairs = 2
	}
	x := append([]float64(nil), x0...)
	n := len(x)
	best := append([]float64(nil), x0...)
	bestF := math.Inf(1)
	const a0, c0, alpha, gamma = 0.2, 0.15, 0.602, 0.101
	for k := 1; k <= iters; k++ {
		ak := a0 / math.Pow(float64(k), alpha)
		ck := c0 / math.Pow(float64(k), gamma)
		deltas := make([][]float64, pairs)
		cands := make([][]float64, 0, 2*pairs+1)
		for p := 0; p < pairs; p++ {
			delta := make([]float64, n)
			for i := range delta {
				if rng.Intn(2) == 0 {
					delta[i] = 1
				} else {
					delta[i] = -1
				}
			}
			deltas[p] = delta
			xp := make([]float64, n)
			xm := make([]float64, n)
			for i := range x {
				xp[i] = x[i] + ck*delta[i]
				xm[i] = x[i] - ck*delta[i]
			}
			cands = append(cands, xp, xm)
		}
		cands = append(cands, append([]float64(nil), x...))
		vals := f(cands)
		if fx := vals[len(vals)-1]; fx < bestF {
			bestF = fx
			copy(best, x)
		}
		g := make([]float64, n)
		for p := 0; p < pairs; p++ {
			diff := (vals[2*p] - vals[2*p+1]) / (2 * ck)
			for i := range g {
				g[i] += diff / deltas[p][i] / float64(pairs)
			}
		}
		for i := range x {
			x[i] -= ak * g[i]
		}
	}
	return best, bestF
}
