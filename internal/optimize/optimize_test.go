package optimize

import (
	"math"
	"math/rand"
	"testing"

	"qfw/internal/qubo"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + 2*(x[1]+0.5)*(x[1]+0.5)
	}
	x, fx, evals := NelderMead(f, []float64{3, 3}, NMOptions{MaxEvals: 400})
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]+0.5) > 1e-3 {
		t.Fatalf("minimum at %v", x)
	}
	if fx > 1e-5 {
		t.Fatalf("f = %g", fx)
	}
	if evals > 400 {
		t.Fatalf("evals %d exceeded budget", evals)
	}
}

func TestNelderMeadRosenbrockProgress(t *testing.T) {
	f := func(x []float64) float64 {
		return 100*math.Pow(x[1]-x[0]*x[0], 2) + math.Pow(1-x[0], 2)
	}
	start := []float64{-1.2, 1}
	x, fx, _ := NelderMead(f, start, NMOptions{MaxEvals: 2000, InitStep: 0.3})
	if fx >= f(start) {
		t.Fatalf("no progress: f=%g at %v", fx, x)
	}
	if fx > 1 {
		t.Fatalf("Rosenbrock got stuck at %g", fx)
	}
}

func TestSPSAOnNoisyQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	noisy := func(x []float64) float64 {
		return x[0]*x[0] + x[1]*x[1] + 0.01*rng.NormFloat64()
	}
	x, _ := SPSA(noisy, []float64{2, -2}, 400, rng)
	if math.Abs(x[0]) > 0.4 || math.Abs(x[1]) > 0.4 {
		t.Fatalf("SPSA ended at %v", x)
	}
}

func TestBruteForceExact(t *testing.T) {
	q := qubo.New(3)
	q.Q[0][0] = -1
	q.Q[1][1] = 2
	q.Set(0, 2, -1.5)
	bits, e := BruteForce(q)
	// Optimal: x0=1, x2=1 (gain -1 - 3), x1=0: E = -1 + 2*(-1.5) = -4.
	if bits[0] != 1 || bits[1] != 0 || bits[2] != 1 {
		t.Fatalf("bits %v", bits)
	}
	if math.Abs(e+4) > 1e-12 {
		t.Fatalf("E = %g, want -4", e)
	}
}

func TestSimulatedAnnealingFindsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		q := qubo.Random(12, 0.6, 1, rng)
		_, exact := BruteForce(q)
		_, got := SimulatedAnnealing(q, 400, rng)
		if got > exact+1e-9 {
			// SA is a heuristic; allow near-misses but not gross failures.
			if (got-exact)/math.Max(1, math.Abs(exact)) > 0.05 {
				t.Fatalf("trial %d: SA %g vs exact %g", trial, got, exact)
			}
		}
	}
}

func TestFlipDeltaConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := qubo.Random(10, 0.7, 1, rng)
	bits := make([]int, 10)
	for i := range bits {
		bits[i] = rng.Intn(2)
	}
	for i := 0; i < 10; i++ {
		before := q.Energy(bits)
		delta := flipDelta(q, bits, i)
		bits[i] ^= 1
		after := q.Energy(bits)
		bits[i] ^= 1
		if math.Abs((after-before)-delta) > 1e-9 {
			t.Fatalf("flip delta wrong at %d: %g vs %g", i, delta, after-before)
		}
	}
}

func TestReferenceSmallUsesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := qubo.Random(8, 0.5, 1, rng)
	_, exact := BruteForce(q)
	_, ref := Reference(q, rng)
	if math.Abs(ref-exact) > 1e-12 {
		t.Fatalf("reference %g vs exact %g", ref, exact)
	}
}

func TestSolutionQuality(t *testing.T) {
	if q := SolutionQuality(-10, -10, 5); q != 1 {
		t.Fatalf("optimal quality %g", q)
	}
	if q := SolutionQuality(5, -10, 5); q != 0 {
		t.Fatalf("worst quality %g", q)
	}
	if q := SolutionQuality(-2.5, -10, 5); math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("mid quality %g", q)
	}
	if q := SolutionQuality(0, 0, 0); q != 1 {
		t.Fatalf("degenerate quality %g", q)
	}
}
