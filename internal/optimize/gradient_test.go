package optimize

import (
	"math"
	"math/rand"
	"testing"
)

// quad is a shifted convex quadratic with its batched value+gradient hooks.
func quadGrad(center []float64) BatchGradObjective {
	return func(xs [][]float64) ([]float64, [][]float64) {
		vals := make([]float64, len(xs))
		grads := make([][]float64, len(xs))
		for j, x := range xs {
			g := make([]float64, len(x))
			for i := range x {
				d := x[i] - center[i]
				vals[j] += d * d * float64(i+1)
				g[i] = 2 * d * float64(i+1)
			}
			grads[j] = g
		}
		return vals, grads
	}
}

func quadVals(center []float64) BatchObjective {
	g := quadGrad(center)
	return func(xs [][]float64) []float64 {
		vals, _ := g(xs)
		return vals
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	center := []float64{1.2, -0.7, 0.4}
	x, fx, evals := Adam(quadGrad(center), []float64{0, 0, 0}, GradOptions{MaxIters: 400, LR: 0.1})
	if fx > 1e-6 {
		t.Fatalf("Adam stalled at f=%g after %d evals (x=%v)", fx, evals, x)
	}
	for i := range x {
		if math.Abs(x[i]-center[i]) > 1e-3 {
			t.Errorf("x[%d]=%g, want %g", i, x[i], center[i])
		}
	}
}

func TestAdamStopsAtTarget(t *testing.T) {
	center := []float64{1, 1}
	_, fx, evals := Adam(quadGrad(center), []float64{0, 0}, GradOptions{
		MaxIters: 500, LR: 0.2, Target: 0.5, HasTarget: true,
	})
	if fx > 0.5 {
		t.Fatalf("target not reached: f=%g", fx)
	}
	if evals >= 500 {
		t.Fatalf("target stop did not trigger early (evals=%d)", evals)
	}
}

func TestGradientDescentArmijo(t *testing.T) {
	center := []float64{-0.5, 2.0, 0.3, 1.1}
	lineCalls := 0
	line := func(xs [][]float64) []float64 {
		lineCalls++
		return quadVals(center)(xs)
	}
	x, fx, evals := GradientDescent(quadGrad(center), make([]float64, 4), GradOptions{
		MaxIters: 120, LR: 1.0, Line: line,
	})
	if fx > 1e-8 {
		t.Fatalf("GD stalled at f=%g after %d grad evals (x=%v)", fx, evals, x)
	}
	if lineCalls == 0 {
		t.Fatal("Armijo search never used the value-only batch hook")
	}
}

func TestGradientDescentWithoutLineHook(t *testing.T) {
	center := []float64{0.8, -0.2}
	_, fx, _ := GradientDescent(quadGrad(center), []float64{0, 0}, GradOptions{MaxIters: 60})
	if fx > 1e-8 {
		t.Fatalf("GD (no line hook) stalled at f=%g", fx)
	}
}

func TestSPSABatchConvergesAndBatches(t *testing.T) {
	center := []float64{0.6, -0.9, 0.2}
	var batchSizes []int
	f := func(xs [][]float64) []float64 {
		batchSizes = append(batchSizes, len(xs))
		return quadVals(center)(xs)
	}
	rng := rand.New(rand.NewSource(3))
	x, _ := SPSABatch(f, []float64{0, 0, 0}, 300, 3, rng)
	for i := range x {
		if math.Abs(x[i]-center[i]) > 0.12 {
			t.Errorf("x[%d]=%g, want ~%g", i, x[i], center[i])
		}
	}
	for _, k := range batchSizes {
		if k != 2*3+1 {
			t.Fatalf("expected batches of 7 (3 pairs + iterate), got %d", k)
		}
	}
}
