package cost

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"qfw/internal/circuit"
)

func chainCircuit(n int) *circuit.Circuit {
	c := circuit.New(n)
	for i := 0; i+1 < n; i++ {
		c.RZZ(i, i+1, circuit.Bound(0.3))
		c.RX(i, circuit.Bound(0.2))
	}
	return c
}

func TestExtractChain(t *testing.T) {
	f := Extract(chainCircuit(8), nil)
	if f.NQubits != 8 || f.TwoQubit != 7 || f.Gates != 14 {
		t.Fatalf("features %+v", f)
	}
	if f.Bandwidth != 1 || f.MeanDistance != 1 {
		t.Fatalf("geometry %+v", f)
	}
	if f.Clifford {
		t.Fatal("RZZ chain flagged Clifford")
	}
	// A single nearest-neighbour pass charges each cut once: 2 bits.
	if f.BondBits != 2 || f.RouteSwaps != 0 {
		t.Fatalf("bond bits %d swaps %d", f.BondBits, f.RouteSwaps)
	}
	if f.EstPeakBond() != 4 {
		t.Fatalf("est peak bond %d", f.EstPeakBond())
	}
	if f.FusedOps == 0 {
		t.Fatalf("no fused ops: %+v", f)
	}
}

func TestExtractLongRangeRoutesSwaps(t *testing.T) {
	c := circuit.New(6)
	c.CX(0, 5)
	f := Extract(c, nil)
	if f.Bandwidth != 5 {
		t.Fatalf("bandwidth %d", f.Bandwidth)
	}
	if f.RouteSwaps == 0 {
		t.Fatal("long-range gate routed without swaps")
	}
}

func TestBondBoundSaturatesOnDenseCircuit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 10
	c := circuit.New(n)
	for i := 0; i < 120; i++ {
		a := rng.Intn(n)
		b := rng.Intn(n)
		for b == a {
			b = rng.Intn(n)
		}
		c.CX(a, b)
	}
	f := Extract(c, nil)
	// The per-cut clamp caps the exponent at the volume-law bound n/2.
	if f.BondBits != n/2 {
		t.Fatalf("bond bits %d, want %d", f.BondBits, n/2)
	}
}

func TestCurveEval(t *testing.T) {
	cv := Curve{Base: 3, Slope: 1, Knee: 10, Slope2: 2}
	if got := cv.Eval(8); got != 1 {
		t.Fatalf("below knee %g", got)
	}
	if got := cv.Eval(12); got != 7 {
		t.Fatalf("above knee %g", got)
	}
}

func TestFitRecoversLine(t *testing.T) {
	f := Extract(chainCircuit(6), nil)
	// Synthesize samples on log2(ms) = -3 + 1.1*(w - w0) for varying widths.
	var samples []Sample
	for _, n := range []int{6, 10, 14, 18} {
		ff := Extract(chainCircuit(n), nil)
		w, ok := workLog2(AerSV, ff, Resources{Workers: 1})
		if !ok {
			t.Fatal("no work estimate")
		}
		samples = append(samples, Sample{Engine: AerSV, F: ff, Res: Resources{Workers: 1}, MS: math.Exp2(-3 + 1.1*(w-10))})
	}
	cal := Fit(samples, nil)
	cv, ok := cal.Curves[AerSV]
	if !ok || cv.Pts != 4 {
		t.Fatalf("fit %+v", cal.Curves)
	}
	if math.Abs(cv.Slope-1.1) > 1e-6 {
		t.Fatalf("slope %g", cv.Slope)
	}
	w, _ := workLog2(AerSV, f, Resources{Workers: 1})
	want := -3 + 1.1*(w-10)
	if got := cv.Eval(w); math.Abs(got-want) > 1e-6 {
		t.Fatalf("eval %g want %g", got, want)
	}
	// A single sample shifts the base curve through the point.
	one := Fit(samples[:1], Seed())
	cv1 := one.Curves[AerSV]
	w0, _ := workLog2(AerSV, samples[0].F, samples[0].Res)
	if math.Abs(cv1.Eval(w0)-math.Log2(samples[0].MS)) > 1e-9 {
		t.Fatalf("shift fit misses the sample: %g vs %g", cv1.Eval(w0), math.Log2(samples[0].MS))
	}
}

func TestSeedCalibrationEmbedded(t *testing.T) {
	s := Seed()
	for _, key := range []string{AerSV, AerMPS, AerStab, NWQOpenMP, NWQMPI, QTensor, TNQVMMPS} {
		if _, ok := s.Curves[key]; !ok {
			t.Fatalf("seed missing curve %s", key)
		}
	}
	if s.SplitPenalty <= 1 {
		t.Fatalf("split penalty %g", s.SplitPenalty)
	}
}

func TestCurrentIsDeterministicUnderGoTest(t *testing.T) {
	m := Current()
	if m == nil {
		t.Skip("QFW_COST=off")
	}
	if src := m.Calibration().Source; src != "seed" && src != "env" {
		t.Fatalf("under go test the calibration came from %q", src)
	}
}

func TestRankPrefersMPSForChainAndWithdrawsOnVolumeLaw(t *testing.T) {
	m := NewModel(Seed())
	env := Env{Workers: 1, Cores: 1}
	engines := []string{AerSV, AerMPS, NWQOpenMP, QTensor}
	chain := Extract(chainCircuit(20), nil)
	cands := m.Rank(chain, engines, env)
	if len(cands) == 0 || cands[0].Engine != AerMPS {
		t.Fatalf("chain ranked %+v", cands)
	}
	if cands[0].Res.MaxBond == 0 || cands[0].Res.MaxBond > 64 {
		t.Fatalf("chain bond sizing %+v", cands[0].Res)
	}
	rng := rand.New(rand.NewSource(3))
	dense := circuit.New(20)
	for i := 0; i < 400; i++ {
		a := rng.Intn(20)
		b := rng.Intn(20)
		for b == a {
			b = rng.Intn(20)
		}
		dense.CX(a, b)
		dense.T(a)
	}
	cands = m.Rank(Extract(dense, nil), engines, env)
	for _, c := range cands {
		if c.Engine == AerMPS {
			t.Fatalf("volume-law circuit kept an MPS candidate: %+v", cands)
		}
	}
}

func TestPlanSplit(t *testing.T) {
	m := NewModel(Seed())
	a := Candidate{Engine: AerSV, Log2MS: 3}
	b := Candidate{Engine: NWQOpenMP, Log2MS: 3}
	plan := m.PlanSplit([]Candidate{a, b}, 8)
	if plan == nil {
		t.Fatal("even candidates did not split")
	}
	if math.Abs(plan.FracA-0.5) > 1e-9 {
		t.Fatalf("even split fraction %g", plan.FracA)
	}
	// gamma=1.5 needs cB < 2*cA: a 4x slower secondary never splits.
	if p := m.PlanSplit([]Candidate{a, {Engine: NWQOpenMP, Log2MS: 5}}, 8); p != nil {
		t.Fatalf("lopsided candidates split: %+v", p)
	}
	if p := m.PlanSplit([]Candidate{a, b}, 2); p != nil {
		t.Fatal("tiny batch split")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cost.json")
	if err := Save(path, Seed()); err != nil {
		t.Fatal(err)
	}
	cal, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Curves) != len(Seed().Curves) {
		t.Fatalf("round trip lost curves: %d vs %d", len(cal.Curves), len(Seed().Curves))
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}
