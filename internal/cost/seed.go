package cost

import (
	_ "embed"
	"encoding/json"
	"sync"
)

// seedJSON is the checked-in seed calibration, fitted offline from the
// repository's BENCH_kernel.json / BENCH_mps.json artifacts by
// `qfwbench -exp fit-cost` (engines those artifacts do not cover carry
// hand-set curves marked pts=0). It is the deterministic calibration used
// under `go test` and QFW_COST=deterministic, and the shape every machine
// probe rescales.
//
//go:embed seed_cost.json
var seedJSON []byte

var (
	seedOnce sync.Once
	seedVal  *Calibration
)

// Seed returns the embedded seed calibration (shared, treat as immutable).
func Seed() *Calibration {
	seedOnce.Do(func() {
		var cal Calibration
		if err := json.Unmarshal(seedJSON, &cal); err != nil {
			panic("cost: corrupt embedded seed calibration: " + err.Error())
		}
		cal.Source = "seed"
		seedVal = &cal
	})
	return seedVal
}
