package cost

// Calibration resolution mirrors the staged-engine autotuner
// (internal/statevec/tune.go): the fitted curves are a machine property, so
// they are resolved once per process and cached per machine signature.
// Resolution order:
//
//  1. QFW_COST environment override:
//     "off"            — disable the cost model (structural routing rules),
//     "deterministic"  — the embedded seed calibration, no disk, no probe,
//     <path>           — load a fitted calibration file (qfwbench -exp fit-cost).
//  2. Under `go test`: the embedded seed, so routing decisions never depend
//     on machine speed or write outside the build sandbox.
//  3. The on-disk cache (os.UserCacheDir()/qfw/cost.json), if its machine
//     signature matches.
//  4. A once-per-machine speed probe: one fused statevector workload is
//     timed and the seed curves are shifted by the measured log2 offset —
//     relative engine constants come from the fitted seed, the absolute
//     scale from the machine. Persisted best-effort beside tune.json.
//
// Inspect with CachePath(); delete the file to re-probe.

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/statevec"
)

// The embedded seed calibration lives in seed.go.

var (
	curOnce sync.Once
	curVal  *Model
)

// Current resolves (once per process) the process-wide cost model. It is
// nil only when QFW_COST=off — callers fall back to structural routing.
func Current() *Model {
	curOnce.Do(func() { curVal = NewModel(resolve()) })
	return curVal
}

func resolve() *Calibration {
	if env := strings.TrimSpace(os.Getenv("QFW_COST")); env != "" {
		switch strings.ToLower(env) {
		case "off":
			return nil
		case "deterministic":
			return Seed()
		}
		if cal, err := Load(env); err == nil {
			cal.Source = "env"
			return cal
		}
		// A bad override falls back to normal resolution rather than
		// failing every run.
	}
	if underGoTest() {
		return Seed()
	}
	if cal, ok := loadCache(); ok {
		return cal
	}
	cal := probe(Seed())
	saveCache(cal)
	return cal
}

func underGoTest() bool {
	if flag.Lookup("test.v") != nil {
		return true
	}
	exe := os.Args[0]
	return strings.HasSuffix(exe, ".test") || strings.HasSuffix(exe, ".test.exe")
}

func machineSignature() string {
	return fmt.Sprintf("%s-%s-cpu%d-v1", runtime.GOOS, runtime.GOARCH, runtime.NumCPU())
}

type cacheFile struct {
	Signature   string       `json:"signature"`
	Calibration *Calibration `json:"calibration"`
}

// CachePath returns the on-disk location of the per-machine calibration.
func CachePath() (string, error) {
	dir, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, "qfw", "cost.json"), nil
}

func loadCache() (*Calibration, bool) {
	path, err := CachePath()
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var cf cacheFile
	if json.Unmarshal(data, &cf) != nil || cf.Signature != machineSignature() ||
		cf.Calibration == nil || len(cf.Calibration.Curves) == 0 {
		return nil, false
	}
	return cf.Calibration, true
}

// saveCache persists best-effort: an unwritable cache dir never fails a run.
func saveCache(cal *Calibration) {
	path, err := CachePath()
	if err != nil {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	data, err := json.MarshalIndent(cacheFile{Signature: machineSignature(), Calibration: cal}, "", "  ")
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if os.WriteFile(tmp, data, 0o644) != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// Load reads a calibration file written by Save or `qfwbench -exp fit-cost`.
func Load(path string) (*Calibration, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cal Calibration
	if err := json.Unmarshal(data, &cal); err != nil {
		return nil, fmt.Errorf("cost: bad calibration %s: %w", path, err)
	}
	if len(cal.Curves) == 0 {
		return nil, fmt.Errorf("cost: calibration %s has no curves", path)
	}
	return &cal, nil
}

// Save writes a calibration as indented JSON.
func Save(path string, cal *Calibration) error {
	data, err := json.MarshalIndent(cal, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// probe times one fused statevector workload and shifts every seed curve by
// the measured log2 offset against the seed's own prediction: one number —
// this machine's speed relative to the fitting machine — recalibrates the
// whole family without re-running the bench suite.
func probe(seed *Calibration) *Calibration {
	const n, depth = 18, 4
	c := probeWorkload(n, depth)
	f := Extract(c, nil)
	workers := statevec.CurrentTuning().Workers
	best := math.Inf(1)
	for rep := 0; rep < 3; rep++ {
		start := time.Now()
		s, _ := statevec.RunFused(c, nil, workers, rand.New(rand.NewSource(1)))
		el := float64(time.Since(start)) / float64(time.Millisecond)
		s.Release()
		if rep == 0 {
			continue // cold-heap warmup
		}
		if el < best {
			best = el
		}
	}
	m := NewModel(seed)
	pred, ok := m.Predict(AerSV, f, Resources{Workers: workers})
	if !ok || !(best > 0) || math.IsInf(best, 1) {
		return seed
	}
	delta := math.Log2(best) - pred
	out := &Calibration{
		Version:      seed.Version,
		Source:       "probe",
		SplitPenalty: seed.SplitPenalty,
		Curves:       make(map[string]Curve, len(seed.Curves)),
	}
	for k, cv := range seed.Curves {
		cv.Base += delta
		out.Curves[k] = cv
	}
	return out
}

func probeWorkload(n, depth int) *circuit.Circuit {
	c := circuit.New(n)
	for d := 0; d < depth; d++ {
		for q := 0; q < n; q++ {
			c.RZZ(q, (q+1)%n, circuit.Bound(0.3))
		}
		for q := 0; q < n; q++ {
			c.RX(q, circuit.Bound(0.7))
		}
	}
	return c
}

// Sample is one fitting observation: an engine ran a circuit with the given
// features and resources in MS milliseconds.
type Sample struct {
	Engine string
	F      *Features
	Res    Resources
	MS     float64
}

// Fit regresses per-engine cost curves from samples in log space, layered
// over a base calibration (typically the seed): engines with two or more
// samples get a fresh least-squares fit (piecewise when five or more
// samples support a knee), engines with exactly one get the base curve
// shifted through the sample, and engines with none keep the base curve.
func Fit(samples []Sample, base *Calibration) *Calibration {
	out := &Calibration{Version: 1, Source: "fit", SplitPenalty: 1.5, Curves: map[string]Curve{}}
	if base != nil {
		out.Version = base.Version
		if base.SplitPenalty > 0 {
			out.SplitPenalty = base.SplitPenalty
		}
		for k, cv := range base.Curves {
			out.Curves[k] = cv
		}
	}
	byEngine := map[string][][2]float64{} // (log2 W, log2 ms)
	for _, s := range samples {
		if s.MS <= 0 {
			continue
		}
		w, ok := workLog2(s.Engine, s.F, s.Res)
		if !ok {
			continue
		}
		byEngine[s.Engine] = append(byEngine[s.Engine], [2]float64{w, math.Log2(s.MS)})
	}
	for key, pts := range byEngine {
		switch {
		case len(pts) >= 2:
			out.Curves[key] = fitCurve(pts)
		case len(pts) == 1:
			cv, ok := out.Curves[key]
			if !ok {
				cv = Curve{Slope: 1, Slope2: 1}
			}
			cv.Base += pts[0][1] - cv.Eval(pts[0][0])
			cv.Pts = 1
			out.Curves[key] = cv
		}
	}
	return out
}

// fitCurve least-squares a line through (w, y) pivoted at the mean w; with
// five or more points it tries a knee at each interior w and keeps the
// two-segment fit when it reduces the residual by at least 20%.
func fitCurve(pts [][2]float64) Curve {
	sort.Slice(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] })
	base, slope, knee, sse := lineFit(pts)
	cv := Curve{Base: base, Slope: slope, Knee: knee, Slope2: slope, Pts: len(pts)}
	if len(pts) < 5 {
		return cv
	}
	bestSSE := sse
	for cut := 2; cut <= len(pts)-2; cut++ {
		lb, ls, lk, lsse := lineFit(pts[:cut])
		kneeW := pts[cut-1][0]
		baseAtKnee := lb + ls*(kneeW-lk)
		// Right segment: slope through the knee point.
		var num, den, rsse float64
		for _, p := range pts[cut:] {
			num += (p[1] - baseAtKnee) * (p[0] - kneeW)
			den += (p[0] - kneeW) * (p[0] - kneeW)
		}
		if den == 0 {
			continue
		}
		s2 := num / den
		for _, p := range pts[cut:] {
			r := p[1] - (baseAtKnee + s2*(p[0]-kneeW))
			rsse += r * r
		}
		if tot := lsse + rsse; tot < bestSSE*0.8 {
			bestSSE = tot
			cv = Curve{Base: baseAtKnee, Slope: ls, Knee: kneeW, Slope2: s2, Pts: len(pts)}
		}
	}
	return cv
}

func lineFit(pts [][2]float64) (base, slope, pivot, sse float64) {
	var mw, my float64
	for _, p := range pts {
		mw += p[0]
		my += p[1]
	}
	mw /= float64(len(pts))
	my /= float64(len(pts))
	var num, den float64
	for _, p := range pts {
		num += (p[0] - mw) * (p[1] - my)
		den += (p[0] - mw) * (p[0] - mw)
	}
	slope = 1
	if den > 0 {
		slope = num / den
	}
	base = my
	for _, p := range pts {
		r := p[1] - (base + slope*(p[0]-mw))
		sse += r * r
	}
	return base, slope, mw, sse
}
