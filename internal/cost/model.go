package cost

import (
	"math"
	"sort"
)

// Engine keys name one (backend, sub-backend) execution path. They double as
// the curve keys of a Calibration.
const (
	AerSV     = "aer/statevector"
	AerMPS    = "aer/matrix_product_state"
	AerStab   = "aer/stabilizer"
	NWQOpenMP = "nwqsim/openmp"
	NWQCPU    = "nwqsim/cpu"
	NWQMPI    = "nwqsim/mpi"
	QTensor   = "qtensor/numpy"
	TNQVMMPS  = "tnqvm/exatn-mps"
)

// Resources are the sizing knobs of one candidate route: kernel worker
// count for the chunked statevector engines, shard (rank) count for the
// distributed path, and the bond cap for the MPS engines.
type Resources struct {
	Workers int `json:"workers,omitempty"`
	Ranks   int `json:"ranks,omitempty"`
	MaxBond int `json:"max_bond,omitempty"`
}

// Curve is one engine's fitted cost curve in log space:
//
//	log2(ms) = Base + Slope*(log2 W - Knee)        for log2 W <= Knee
//	log2(ms) = Base + Slope2*(log2 W - Knee)       above the knee
//
// where W is the engine's analytic work estimate (workLog2). A single-segment
// fit sets Slope2 = Slope. Pts records the fit support; 0 marks a hand-set
// seed segment that no artifact covered.
type Curve struct {
	Base   float64 `json:"base"`
	Slope  float64 `json:"slope"`
	Knee   float64 `json:"knee"`
	Slope2 float64 `json:"slope2"`
	Pts    int     `json:"pts"`
}

// Eval returns log2(predicted ms) at log2-work w.
func (cv Curve) Eval(w float64) float64 {
	s := cv.Slope
	if w > cv.Knee && cv.Slope2 != 0 {
		return cv.Base + cv.Slope2*(w-cv.Knee)
	}
	return cv.Base + s*(w-cv.Knee)
}

// Calibration is the persisted cost model: one curve per engine key plus the
// batch-split contention penalty. Shape mirrors internal/statevec/tune.json
// (signature-keyed machine cache, best-effort persistence).
type Calibration struct {
	Version      int              `json:"version"`
	Source       string           `json:"source"` // "seed", "fit", "probe", "env"
	SplitPenalty float64          `json:"split_penalty"`
	Curves       map[string]Curve `json:"curves"`
}

// Model ranks candidate routes under a calibration.
type Model struct {
	cal *Calibration
}

// NewModel wraps a calibration; nil returns a nil model (routing falls back
// to structural rules).
func NewModel(cal *Calibration) *Model {
	if cal == nil {
		return nil
	}
	return &Model{cal: cal}
}

// Calibration exposes the model's underlying calibration (telemetry, tests).
func (m *Model) Calibration() *Calibration { return m.cal }

// workLog2 is the analytic per-element work estimate of an engine family, in
// log2 units. The fitted curve maps work to milliseconds; keeping the
// estimate in log space makes 2^n terms safe far past any feasible size.
func workLog2(key string, f *Features, r Resources) (float64, bool) {
	n := float64(f.NQubits)
	switch key {
	case AerSV, NWQOpenMP, NWQCPU, NWQMPI:
		// Chunked dense statevector: fused-op count times the state size,
		// divided across kernel workers (or shards x per-rank workers for
		// the distributed path). A remap term charges the all-to-all
		// exchanges the sharded engine pays per stage boundary.
		ops := float64(max(f.FusedOps, 1))
		w := float64(max(r.Workers, 1))
		work := ops * math.Exp2(n) / w
		if key == NWQMPI {
			ranks := float64(max(r.Ranks, 1))
			work = ops*math.Exp2(n)/(ranks*w) + 0.5*math.Exp2(n)*math.Log2(ranks+1)
		}
		return math.Log2(work + 512), true
	case AerMPS, TNQVMMPS:
		cap := float64(r.MaxBond)
		if cap <= 0 {
			cap = 64 // mps.DefaultMaxBond (not importable without a cycle)
		}
		chi := float64(f.EstPeakBond())
		if cap < chi {
			// Truncated run: the cap binds only at the central cuts, and
			// the bond profile ramps exponentially toward the centre, so
			// the op-weighted effective bond sits near the profile's
			// geometric mean — the square root of the estimated peak —
			// until the cap's own truncated average (~cap/4, what measured
			// per-op costs track) clamps it.
			chi = math.Max(8, math.Min(math.Sqrt(chi), cap/4))
		}
		twoQ := float64(f.TwoQubit + f.RouteSwaps)
		oneQ := float64(f.Gates - f.TwoQubit)
		// Two-site contractions cost chi^3, single-site updates chi^2, and
		// a per-qubit term covers allocation/canonicalization overhead.
		work := twoQ*chi*chi*chi + (oneQ+4*n)*chi*chi
		return math.Log2(work + 512), true
	case AerStab:
		if !f.Clifford {
			return 0, false
		}
		work := float64(f.Gates+64) * n * n
		return math.Log2(work + 512), true
	case QTensor:
		// The tensor-network backend contracts to the full amplitude
		// vector, so its asymptotics match the dense engines with a much
		// larger constant (captured by the curve base).
		work := float64(max(f.Gates, 1)) * math.Exp2(n)
		return math.Log2(work + 512), true
	}
	return 0, false
}

// Predict returns log2(predicted ms) for one engine at the given resources,
// or ok=false when the engine cannot run the circuit (non-Clifford on the
// stabilizer path) or the calibration has no curve for it.
func (m *Model) Predict(key string, f *Features, r Resources) (float64, bool) {
	cv, ok := m.cal.Curves[key]
	if !ok {
		return 0, false
	}
	w, ok := workLog2(key, f, r)
	if !ok {
		return 0, false
	}
	return cv.Eval(w), true
}

// PredictMS is Predict in linear milliseconds.
func (m *Model) PredictMS(key string, f *Features, r Resources) (float64, bool) {
	l, ok := m.Predict(key, f, r)
	if !ok {
		return 0, false
	}
	return math.Exp2(l), true
}

// Env carries the machine context candidate sizing draws on: the tuned
// kernel worker count (statevec.CurrentTuning().Workers), the scheduler's
// usable core count, and the dense-amplitude memory budget (0 = unbounded).
// Candidates that cannot physically run under the budget are withdrawn
// rather than offered as routes that can only fail.
type Env struct {
	Workers  int
	Cores    int
	MemBytes int64
}

// denseFits reports whether a 16-byte-per-amplitude dense state of n qubits
// fits the budget (mirrors the backends' state-vector feasibility check).
func denseFits(n int, memBytes int64) bool {
	if n >= 62 {
		return false
	}
	return memBytes <= 0 || (int64(16)<<uint(n)) <= memBytes
}

// Candidate is one ranked route: an engine key, its sized resources, and
// the predicted per-element cost.
type Candidate struct {
	Engine string
	Res    Resources
	Log2MS float64
}

// MS returns the candidate's predicted cost in milliseconds.
func (c Candidate) MS() float64 { return math.Exp2(c.Log2MS) }

// Rank sizes and scores every offered engine key and returns the candidates
// sorted by predicted cost (ties broken by key for determinism). Sizing per
// family: dense engines take the tuned kernel worker count; the distributed
// path additionally searches shard counts; the MPS engines take the smallest
// power-of-two bond cap that the estimated peak bond proves lossless, so a
// provably low-entanglement circuit never pays for headroom it cannot use.
func (m *Model) Rank(f *Features, engines []string, env Env) []Candidate {
	env.Workers = max(env.Workers, 1)
	env.Cores = max(env.Cores, 1)
	var out []Candidate
	for _, key := range engines {
		var best *Candidate
		for _, r := range sizings(key, f, env) {
			l, ok := m.Predict(key, f, r)
			if !ok {
				continue
			}
			if best == nil || l < best.Log2MS {
				best = &Candidate{Engine: key, Res: r, Log2MS: l}
			}
		}
		if best != nil {
			out = append(out, *best)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Log2MS != out[j].Log2MS {
			return out[i].Log2MS < out[j].Log2MS
		}
		return out[i].Engine < out[j].Engine
	})
	return out
}

// sizings enumerates the resource candidates of one engine key.
func sizings(key string, f *Features, env Env) []Resources {
	fits := denseFits(f.NQubits, env.MemBytes)
	switch key {
	case AerSV, NWQOpenMP, NWQCPU:
		if !fits {
			return nil
		}
		return []Resources{{Workers: env.Workers}}
	case NWQMPI:
		// Shards are processes on this machine's cores: rank counts past
		// the core count model a speedup the hardware cannot deliver, and
		// the shards jointly hold the full dense state.
		if !fits {
			return nil
		}
		var out []Resources
		for _, r := range []int{1, 2, 4, 8} {
			if r > 1 && r > env.Cores {
				break
			}
			out = append(out, Resources{Workers: max(env.Workers/r, 1), Ranks: r})
		}
		return out
	case QTensor:
		// Contracts to the full amplitude vector, so the dense budget
		// applies unchanged.
		if !fits {
			return nil
		}
		return []Resources{{}}
	case AerMPS, TNQVMMPS:
		// Bond cap sized from the entanglement bound: the smallest
		// power-of-two at or above the estimated peak bond keeps the run
		// exact while trimming the workspace; past the practical cap the
		// engine's own default truncation policy applies (MaxBond 0).
		est := f.EstPeakBond()
		for _, b := range []int{8, 16, 32, 64} {
			if est <= b {
				return []Resources{{MaxBond: b, Workers: env.Workers}}
			}
		}
		// Past the practical cap the engine truncates. Area-law structure
		// truncates gracefully, and a deep nearest-neighbour circuit
		// saturates the clamped bound without being volume-law — but a
		// saturated bound built from long-range couplings means genuine
		// volume-law entanglement, where a capped MPS run is cheap
		// garbage. When an exact dense engine can still run such a
		// circuit, withdraw the candidate rather than win on a runtime
		// the fidelity cannot back; when nothing dense fits, the
		// truncating MPS is the only engine that runs at all, so it
		// stays offered.
		if fits && f.BondBits >= f.NQubits/2 && f.Bandwidth > 1 {
			return nil
		}
		return []Resources{{Workers: env.Workers}}
	default:
		return []Resources{{}}
	}
}

// SplitPlan is a heterogeneous batch split: the head nA elements go to the
// primary candidate, the tail to the secondary, chosen so both finish
// together under the calibrated contention penalty.
type SplitPlan struct {
	A, B     Candidate
	FracA    float64
	Log2Wall float64
}

// PlanSplit decides whether splitting a K-element batch across the top two
// candidates beats the best single engine. With per-element costs cA <= cB,
// running fractions in inverse proportion finishes in K*cA*cB/(cA+cB) wall
// time, inflated by the calibrated contention penalty gamma (two engines
// sharing one machine); the split wins only when that still undercuts K*cA.
// Candidates must come from Rank (sorted); nil means run the batch whole.
func (m *Model) PlanSplit(cands []Candidate, k int) *SplitPlan {
	if k < 4 || len(cands) < 2 {
		return nil
	}
	gamma := m.cal.SplitPenalty
	if gamma <= 0 {
		gamma = 1.5
	}
	a, b := cands[0], cands[1]
	ca, cb := a.MS(), b.MS()
	single := float64(k) * ca
	split := gamma * float64(k) * ca * cb / (ca + cb)
	if split >= single {
		return nil
	}
	return &SplitPlan{
		A:        a,
		B:        b,
		FracA:    cb / (ca + cb),
		Log2Wall: math.Log2(split),
	}
}
