// Package cost implements the calibrated cost model behind workload-driven
// routing (the paper's stated future work, ROADMAP item 2). It has three
// parts: structural feature extraction from a circuit and its fusion plan
// (Extract), per-engine cost curves fitted in log space from bench artifacts
// (Fit / Calibration), and candidate-route ranking by predicted runtime
// (Model.Rank). The package deliberately depends only on the circuit IR so
// that core can build the router on top of it without an import cycle.
package cost

import (
	"qfw/internal/circuit"
)

// Features are the binding-independent structural properties of one circuit
// that the cost curves consume. They derive from the parsed circuit and its
// cached fusion plan only, so one extraction serves every binding of a
// parametric ansatz (the router memoizes them per spec hash).
type Features struct {
	NQubits  int  `json:"nqubits"`
	Gates    int  `json:"gates"` // executable gates (barriers/measures excluded)
	TwoQubit int  `json:"twoq"`  // gates on >= 2 qubits
	Depth    int  `json:"depth"`
	Clifford bool `json:"clifford"`

	// Fusion-plan shape: how many fused operations the dense engines
	// actually dispatch, split by segment kind. DiagFraction is the share
	// of source gates absorbed into hoisted diagonal runs — the signal for
	// how well the staged/fused statevector paths compress the circuit.
	FusedOps     int     `json:"fused_ops"`
	DenseOps     int     `json:"dense_ops"`
	DiagOps      int     `json:"diag_ops"`
	PassOps      int     `json:"pass_ops"`
	DiagFraction float64 `json:"diag_fraction"`

	// Interaction-graph geometry: Bandwidth is the maximum |i-j| over
	// multi-qubit gates (1 = strictly nearest-neighbour), MeanDistance the
	// average — together the entanglement-growth proxy of the MPS regime.
	Bandwidth    int     `json:"bandwidth"`
	MeanDistance float64 `json:"mean_distance"`

	// RouteSwaps estimates the adjacency-routing swaps a chain-topology
	// engine inserts (persistent-permutation routing, mirroring
	// mps.CompileCircuit), and BondBits the resulting peak bond dimension as
	// a log2 upper bound: each two-site operation crossing a chain cut can
	// at most square the Schmidt rank across it (2 bits), and the bond at
	// cut k never exceeds the dimension of the smaller side, 2^min(k+1,
	// n-1-k). Measured PeakBond values must stay at or below 1<<BondBits —
	// asserted against the conformance corpus.
	RouteSwaps int `json:"route_swaps"`
	BondBits   int `json:"bond_bits"`
}

// EstPeakBond returns the estimated peak bond dimension, clamped so the
// shift cannot overflow.
func (f *Features) EstPeakBond() int {
	b := f.BondBits
	if b > 30 {
		b = 30
	}
	return 1 << b
}

// Extract computes the features of a bound-or-parametric circuit body and
// its fusion plan. The plan must have been built against the same
// (measurement-stripped) circuit; pass nil to derive it here.
func Extract(c *circuit.Circuit, plan *circuit.FusionPlan) *Features {
	body := c.StripMeasurements()
	if plan == nil {
		plan = circuit.PlanFusion(body)
	}
	f := &Features{
		NQubits:  body.NQubits,
		Depth:    body.Depth(),
		Clifford: body.IsClifford(),
	}
	var distSum, distCnt int
	for _, g := range body.Gates {
		if g.Kind == circuit.KindBarrier || g.Kind == circuit.KindMeasure {
			continue
		}
		f.Gates++
		if len(g.Qubits) >= 2 {
			f.TwoQubit++
			lo, hi := spanOf(g.Qubits)
			if d := hi - lo; d > 0 {
				if d > f.Bandwidth {
					f.Bandwidth = d
				}
				distSum += d
				distCnt++
			}
		}
	}
	if distCnt > 0 {
		f.MeanDistance = float64(distSum) / float64(distCnt)
	}
	diagGates := 0
	for _, seg := range plan.Segments(body) {
		f.FusedOps++
		switch seg.Kind {
		case circuit.SegDense:
			f.DenseOps++
		case circuit.SegDiag:
			f.DiagOps++
			diagGates += len(seg.Gates)
		default:
			f.PassOps++
		}
	}
	if f.Gates > 0 {
		f.DiagFraction = float64(diagGates) / float64(f.Gates)
	}
	f.BondBits, f.RouteSwaps = estimateBond(body)
	return f
}

func spanOf(qs []int) (lo, hi int) {
	lo, hi = qs[0], qs[0]
	for _, q := range qs[1:] {
		if q < lo {
			lo = q
		}
		if q > hi {
			hi = q
		}
	}
	return lo, hi
}

// estimateBond replays the circuit's multi-qubit gates through a persistent
// site permutation (the routing discipline of the compiled MPS engine) and
// accumulates per-cut entangling budget: every two-site operation crossing a
// cut — a routed swap or the gate itself — adds 2 bits (a two-site unitary
// has operator Schmidt rank at most 4, so the bond across its cut at most
// quadruples). The final exponent at each cut is clamped by the exact
// dimension bound min(k+1, n-1-k); the maximum over cuts upper-bounds the
// peak bond any chain-topology simulation of the circuit can reach, and the
// swap count sizes the routed workload for the MPS cost curve.
func estimateBond(c *circuit.Circuit) (bondBits, routeSwaps int) {
	n := c.NQubits
	if n < 2 {
		return 0, 0
	}
	site := make([]int, n) // qubit -> chain position
	for q := range site {
		site[q] = q
	}
	qubitAt := make([]int, n) // chain position -> qubit
	copy(qubitAt, site)
	bits := make([]int, n-1)
	swapTo := func(from, to int) {
		// Move the qubit at chain position `from` stepwise to `to`,
		// charging each crossed cut.
		step := 1
		if to < from {
			step = -1
		}
		for p := from; p != to; p += step {
			q1, q2 := qubitAt[p], qubitAt[p+step]
			qubitAt[p], qubitAt[p+step] = q2, q1
			site[q1], site[q2] = p+step, p
			cut := p
			if step < 0 {
				cut = p - 1
			}
			bits[cut] += 2
			routeSwaps++
		}
	}
	for _, g := range c.Gates {
		if g.Kind == circuit.KindBarrier || g.Kind == circuit.KindMeasure || g.Kind == circuit.KindReset {
			continue
		}
		if len(g.Qubits) < 2 {
			continue
		}
		// Route every further operand to the near edge of the contiguous
		// block built so far (never through it — the block holds already
		// placed operands), then charge the gate itself at the cuts inside
		// its site range.
		lo := site[g.Qubits[0]]
		hi := lo
		for _, q := range g.Qubits[1:] {
			switch p := site[q]; {
			case p < lo:
				swapTo(p, lo-1)
				lo--
			case p > hi:
				swapTo(p, hi+1)
				hi++
			}
		}
		for k := lo; k < hi; k++ {
			bits[k] += 2
		}
	}
	for k, v := range bits {
		lim := k + 1
		if r := n - 1 - k; r < lim {
			lim = r
		}
		if v > lim {
			v = lim
		}
		if v > bondBits {
			bondBits = v
		}
	}
	return bondBits, routeSwaps
}
