package backends

import (
	"fmt"
	"math"
	"testing"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/cluster"
	"qfw/internal/core"
	"qfw/internal/prte"
	"qfw/internal/slurm"
	"qfw/internal/trace"
)

// testEnv builds a minimal backend environment without a full session.
func testEnv(t *testing.T) *core.Env {
	t.Helper()
	machine := cluster.Frontier(2)
	sched := slurm.NewScheduler(machine)
	job, err := sched.Submit(slurm.JobReq{Name: "batch-test", HetGroups: []slurm.GroupReq{{Name: "g", Nodes: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := job.WaitStart()
	if err != nil {
		t.Fatal(err)
	}
	dvm, err := prte.Start(machine, alloc.Group(0))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dvm.Shutdown(); job.Complete() })
	return &core.Env{
		Machine:        machine,
		DVM:            dvm,
		Nodes:          alloc.Group(0).Nodes,
		Rec:            trace.NewRecorder(),
		MemBudgetBytes: 1 << 30,
		CloudLatency:   time.Millisecond,
		CloudJitter:    time.Millisecond,
		Seed:           1,
	}
}

// rotAnsatz is a tiny parametric circuit whose outcome distribution depends
// on theta, so batch elements are distinguishable.
func rotAnsatz() *circuit.Circuit {
	c := circuit.New(2)
	c.Name = "rot"
	c.RY(0, circuit.Sym("theta", 1))
	c.CX(0, 1)
	c.MeasureAll()
	return c
}

// p1 extracts the empirical probability of qubit 0 being 1.
func p1(counts map[string]int) float64 {
	total, ones := 0, 0
	for key, n := range counts {
		total += n
		if key[len(key)-1] == '1' {
			ones += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ones) / float64(total)
}

func TestLocalBackendsBatchParseOnce(t *testing.T) {
	env := testEnv(t)
	spec, err := core.SpecFromParametric(rotAnsatz())
	if err != nil {
		t.Fatal(err)
	}
	if !spec.IsParametric() {
		t.Fatalf("spec not parametric: %+v", spec)
	}
	const K = 8
	bindings := make([]core.Bindings, K)
	for i := range bindings {
		bindings[i] = core.Bindings{"theta": math.Pi * float64(i) / float64(K-1)}
	}
	cases := []struct {
		name  string
		sub   string
		make  func(*core.Env) (core.Executor, error)
		cache func(core.Executor) *core.ParseCache
	}{
		{"nwqsim", "openmp", newNWQSim, func(e core.Executor) *core.ParseCache { return e.(*nwqsim).cache }},
		{"aer", "statevector", newAer, func(e core.Executor) *core.ParseCache { return e.(*aer).cache }},
		{"tnqvm", "exatn-mps", newTNQVM, func(e core.Executor) *core.ParseCache { return e.(*tnqvm).cache }},
		{"qtensor", "numpy", newQTensor, func(e core.Executor) *core.ParseCache { return e.(*qtensor).cache }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exec, err := tc.make(env)
			if err != nil {
				t.Fatal(err)
			}
			be, ok := exec.(core.BatchExecutor)
			if !ok {
				t.Fatalf("%s does not implement BatchExecutor", tc.name)
			}
			results, err := be.ExecuteBatch(spec, bindings, core.RunOptions{Shots: 512, Seed: 3, Subbackend: tc.sub})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != K {
				t.Fatalf("%d results, want %d", len(results), K)
			}
			// theta sweeps 0..pi, so P(q0=1) must increase from ~0 to ~1:
			// ordering of results is observable.
			if first, last := p1(results[0].Counts), p1(results[K-1].Counts); first > 0.1 || last < 0.9 {
				t.Fatalf("batch order broken: P1(first)=%.2f P1(last)=%.2f", first, last)
			}
			if got := tc.cache(exec).Parses(); got != 1 {
				t.Fatalf("QASM parses = %d, want exactly 1 for the whole batch", got)
			}
		})
	}
}

func TestNWQSimMPIBatchPersistentWorld(t *testing.T) {
	// The mpi sub-backend's batch path keeps one process group and one
	// communicator world alive across all K bindings, shares the spec-hash
	// fused plan (one parse, one fusion for the whole batch), and each
	// element must reproduce exactly what a standalone distributed Execute
	// with the same derived seed produces.
	env := testEnv(t)
	exec, err := newNWQSim(env)
	if err != nil {
		t.Fatal(err)
	}
	b := exec.(*nwqsim)
	ansatz := circuit.New(4)
	ansatz.Name = "mpi-batch"
	for q := 0; q < 4; q++ {
		ansatz.H(q)
	}
	for q := 0; q+1 < 4; q++ {
		ansatz.RZZ(q, q+1, circuit.Sym("gamma", 1))
	}
	for q := 0; q < 4; q++ {
		ansatz.RX(q, circuit.Sym("beta", 1))
	}
	ansatz.MeasureAll()
	spec, err := core.SpecFromParametric(ansatz)
	if err != nil {
		t.Fatal(err)
	}
	const K = 5
	bindings := make([]core.Bindings, K)
	for i := range bindings {
		bindings[i] = core.Bindings{"gamma": 0.2 * float64(i+1), "beta": 1.4 - 0.2*float64(i)}
	}
	obs := &core.Observable{Fields: []float64{1, -0.5, 0.25, 0}, Paulis: []core.PauliTerm{{Coeff: 0.3, Ops: "XIIX"}}}
	opts := core.RunOptions{Shots: 256, Seed: 9, Subbackend: "mpi", Nodes: 2, ProcsPerNode: 2, Observable: obs}
	batch, err := b.ExecuteBatch(spec, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != K {
		t.Fatalf("%d results, want %d", len(batch), K)
	}
	if got := b.cache.Parses(); got != 1 {
		t.Fatalf("QASM parses = %d, want 1 for the whole batch", got)
	}
	if got := b.cache.Fusions(); got != 1 {
		t.Fatalf("fusion plans = %d, want 1 for the whole batch", got)
	}
	for i, bd := range bindings {
		boundSpec, err := core.SpecFromCircuit(ansatz.Bind(bd))
		if err != nil {
			t.Fatal(err)
		}
		seq, err := b.Execute(boundSpec, opts.ForElement(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Counts) != len(batch[i].Counts) {
			t.Fatalf("element %d: batch %v vs sequential %v", i, batch[i].Counts, seq.Counts)
		}
		for key, n := range seq.Counts {
			if batch[i].Counts[key] != n {
				t.Fatalf("element %d key %s: batch %d vs sequential %d", i, key, batch[i].Counts[key], n)
			}
		}
		if batch[i].ExpVal == nil || seq.ExpVal == nil || math.Abs(*batch[i].ExpVal-*seq.ExpVal) > 1e-12 {
			t.Fatalf("element %d expval: batch %v vs sequential %v", i, batch[i].ExpVal, seq.ExpVal)
		}
		if batch[i].Extra["ranks"] != 4 {
			t.Fatalf("element %d ran on %v ranks, want 4", i, batch[i].Extra["ranks"])
		}
	}
}

func TestIonQBatchJobArray(t *testing.T) {
	env := testEnv(t)
	exec, err := newIonQ(env)
	if err != nil {
		t.Fatal(err)
	}
	b := exec.(*ionqBackend)
	defer b.Close()
	spec, err := core.SpecFromParametric(rotAnsatz())
	if err != nil {
		t.Fatal(err)
	}
	bindings := []core.Bindings{{"theta": 0}, {"theta": math.Pi / 2}, {"theta": math.Pi}}
	results, err := b.ExecuteBatch(spec, bindings, core.RunOptions{Shots: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	if first, last := p1(results[0].Counts), p1(results[2].Counts); first > 0.1 || last < 0.9 {
		t.Fatalf("cloud batch order broken: P1(first)=%.2f P1(last)=%.2f", first, last)
	}
	if got := b.cache.Parses(); got != 1 {
		t.Fatalf("QASM parses = %d, want 1", got)
	}
}

func TestBatchMatchesSequentialExecution(t *testing.T) {
	// Element i of a batch must produce exactly the result a sequential
	// Execute with the bound circuit and the same derived seed produces.
	env := testEnv(t)
	exec, err := newAer(env)
	if err != nil {
		t.Fatal(err)
	}
	ansatz := rotAnsatz()
	spec, err := core.SpecFromParametric(ansatz)
	if err != nil {
		t.Fatal(err)
	}
	bindings := []core.Bindings{{"theta": 0.3}, {"theta": 1.1}, {"theta": 2.2}}
	opts := core.RunOptions{Shots: 128, Seed: 17, Subbackend: "statevector"}
	batch, err := exec.(core.BatchExecutor).ExecuteBatch(spec, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bindings {
		boundSpec, err := core.SpecFromCircuit(ansatz.Bind(b))
		if err != nil {
			t.Fatal(err)
		}
		seq, err := exec.Execute(boundSpec, opts.ForElement(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(seq.Counts) != len(batch[i].Counts) {
			t.Fatalf("element %d: %v vs %v", i, seq.Counts, batch[i].Counts)
		}
		for key, n := range seq.Counts {
			if batch[i].Counts[key] != n {
				t.Fatalf("element %d key %s: batch %d vs sequential %d", i, key, batch[i].Counts[key], n)
			}
		}
	}
}

func TestSingleExecuteRejectsParametricSpec(t *testing.T) {
	env := testEnv(t)
	exec, err := newAer(env)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := core.SpecFromParametric(rotAnsatz())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Execute(spec, core.RunOptions{}); err == nil {
		t.Fatal("parametric spec accepted by single-shot Execute")
	}
}

func TestNWQSimMPIFallsBackLocal(t *testing.T) {
	// When the MPI world cannot form — here the DVM is already shut down —
	// the mpi sub-backend must degrade to the node-local engine instead of
	// failing, tag every result with Extra["mpi_fallback"], and reproduce
	// the same physics the local engine computes directly (seeds are
	// derived identically on both routes).
	env := testEnv(t)
	exec, err := newNWQSim(env)
	if err != nil {
		t.Fatal(err)
	}
	env.DVM.Shutdown()

	ansatz := circuit.New(3)
	ansatz.Name = "fallback-sweep"
	ansatz.H(0).CX(0, 1).CX(1, 2)
	ansatz.RZ(2, circuit.Sym("theta", 1))
	ansatz.MeasureAll()
	spec, err := core.SpecFromParametric(ansatz)
	if err != nil {
		t.Fatal(err)
	}
	bindings := []core.Bindings{{"theta": 0.3}, {"theta": 0.9}, {"theta": 1.5}}
	opts := core.RunOptions{Shots: 128, Seed: 7, Subbackend: "mpi", Nodes: 2, ProcsPerNode: 2}

	res, err := exec.(core.BatchExecutor).ExecuteBatch(spec, bindings, opts)
	if err != nil {
		t.Fatalf("batch did not degrade: %v", err)
	}
	lopts := opts
	lopts.Subbackend = "openmp"
	want, err := exec.(core.BatchExecutor).ExecuteBatch(spec, bindings, lopts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Extra["mpi_fallback"] != 1 {
			t.Fatalf("element %d missing mpi_fallback tag: %+v", i, res[i].Extra)
		}
		if fmt.Sprint(res[i].Counts) != fmt.Sprint(want[i].Counts) {
			t.Fatalf("element %d: fallback %v != local %v", i, res[i].Counts, want[i].Counts)
		}
	}

	// The single-execution distributed path degrades the same way.
	bell := circuit.New(2)
	bell.Name = "fallback-bell"
	bell.H(0).CX(0, 1)
	bell.MeasureAll()
	bspec, err := core.SpecFromCircuit(bell)
	if err != nil {
		t.Fatal(err)
	}
	single, err := exec.Execute(bspec, core.RunOptions{Shots: 64, Seed: 11, Subbackend: "mpi", Nodes: 2, ProcsPerNode: 2})
	if err != nil {
		t.Fatalf("single execute did not degrade: %v", err)
	}
	if single.Extra["mpi_fallback"] != 1 {
		t.Fatalf("single execute missing mpi_fallback tag: %+v", single.Extra)
	}
	total := 0
	for key, n := range single.Counts {
		if key != "00" && key != "11" {
			t.Fatalf("bell outcome %q", key)
		}
		total += n
	}
	if total != 64 {
		t.Fatalf("total %d", total)
	}
}
