package backends

import (
	"fmt"

	"qfw/internal/core"
	"qfw/internal/statevec"
)

// Shared adjoint-gradient executor of the local state-vector backends:
// the spec is parsed — and its gradient-aware fusion plan built — once per
// ansatz through the backend's cache, then every binding runs one adjoint
// sweep (forward + reverse, three arena-backed states) on the chunked
// kernels. Bindings fan out across a core-bounded worker pool; the chunked
// kernel parallelism divides the cores among the in-flight sweeps so a
// gradient batch never oversubscribes the node.
func runGradient(cache *core.ParseCache, spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions, workers int) ([]core.GradResult, error) {
	if opts.Observable == nil {
		return nil, fmt.Errorf("backend: gradient execution requires an observable")
	}
	base, gplan, err := cache.GetGrad(spec)
	if err != nil {
		return nil, fmt.Errorf("backend: bad circuit spec: %w", err)
	}
	obs := gradObsFor(opts.Observable, base.NQubits)
	maps := make([]map[string]float64, len(bindings))
	for i, b := range bindings {
		maps[i] = b
	}
	evals, err := statevec.GradientAdjointBatch(gplan, maps, obs, workers)
	if err != nil {
		return nil, err
	}
	out := make([]core.GradResult, len(evals))
	for i, e := range evals {
		out[i] = core.GradResult{Value: e.Value, Grad: e.Grad}
	}
	return out, nil
}

// checkGradientBudget enforces the memory budget for one adjoint sweep:
// unlike plain execution, three full-width states (|ψ⟩, |λ⟩, |μ⟩) are live
// simultaneously, so the per-execution footprint is 3·16 bytes/amplitude.
func checkGradientBudget(n int, budget int64) error {
	// 48 = 3·16 bytes/amplitude; 48<<58 already overflows int64, so the
	// width guard must reject n >= 58 before the shift.
	if n >= 58 {
		return core.Infeasible("adjoint gradient of %d qubits", n)
	}
	need := int64(48) << uint(n)
	if need > budget {
		return core.Infeasible("adjoint gradient of %d qubits needs %d MiB (three states), budget %d MiB",
			n, need>>20, budget>>20)
	}
	return nil
}

// gradObsFor maps the wire-format observable onto the adjoint engine's
// evaluation paths: diagonal operators use the basis-index fast path,
// anything with X/Y terms becomes a Pauli Hamiltonian.
func gradObsFor(o *core.Observable, n int) statevec.GradObs {
	if o.IsDiagonal() {
		return statevec.GradObs{Diag: o.EnergyOfIndex}
	}
	return statevec.GradObs{Ham: obsHamiltonian(o, n)}
}
