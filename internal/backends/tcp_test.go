package backends

import (
	"strings"
	"sync"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/cluster"
	"qfw/internal/core"
)

// TestFullStackOverTCP exercises the deployment mode of cmd/qfwd: the DEFw
// endpoint on TCP loopback with multiple concurrent application clients.
func TestFullStackOverTCP(t *testing.T) {
	s, err := core.Launch(core.Config{
		Machine:  cluster.Frontier(2),
		Backends: []string{"aer", "nwqsim"},
		UseTCP:   true,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Teardown()
	if s.Addr == "" || !strings.Contains(s.Addr, "127.0.0.1") {
		t.Fatalf("TCP address %q", s.Addr)
	}
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			backend := "aer"
			if i%2 == 1 {
				backend = "nwqsim"
			}
			f, err := s.Frontend(core.Properties{Backend: backend})
			if err != nil {
				errs[i] = err
				return
			}
			c := circuit.New(5)
			c.H(0)
			for q := 0; q+1 < 5; q++ {
				c.CX(q, q+1)
			}
			c.MeasureAll()
			res, err := f.Run(c, core.RunOptions{Shots: 100, Seed: int64(i + 1)})
			if err != nil {
				errs[i] = err
				return
			}
			if res.Counts["00000"]+res.Counts["11111"] != 100 {
				t.Errorf("client %d: bad GHZ counts %v", i, res.Counts)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestAsyncBatchThroughStack mirrors the variational pattern: many
// asynchronous submissions in flight, collected out of order.
func TestAsyncBatchThroughStack(t *testing.T) {
	s := launch(t)
	f, err := s.Frontend(core.Properties{Backend: "aer", Subbackend: "statevector"})
	if err != nil {
		t.Fatal(err)
	}
	var pendings []*core.Pending
	for i := 0; i < 12; i++ {
		c := circuit.New(4)
		c.H(0).CX(0, 1).CX(1, 2).CX(2, 3).RZ(3, circuit.Bound(float64(i)*0.1)).MeasureAll()
		c.Name = "batch"
		p, err := f.RunAsync(c, core.RunOptions{Shots: 50, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	// Collect in reverse order to prove completion is order-independent.
	for i := len(pendings) - 1; i >= 0; i-- {
		res, err := pendings[i].Result()
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, n := range res.Counts {
			total += n
		}
		if total != 50 {
			t.Fatalf("pending %d: %d shots", i, total)
		}
	}
}
