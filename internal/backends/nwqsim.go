package backends

import (
	"fmt"
	"runtime"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/mpi"
	"qfw/internal/prte"
	"qfw/internal/statevec"
)

// nwqsim is the SV-Sim analog: a state-vector engine whose native MPI
// distribution makes it the strong performer on large entangled workloads
// (GHZ, HAM) and large HHL instances in the paper.
type nwqsim struct {
	env   *core.Env
	cache *core.ParseCache
}

func newNWQSim(env *core.Env) (core.Executor, error) {
	return &nwqsim{env: env, cache: core.NewParseCache()}, nil
}

func (b *nwqsim) Name() string { return "nwqsim" }

func (b *nwqsim) Capabilities() core.Capabilities {
	return core.Capabilities{
		Backend:     "nwqsim",
		Subbackends: []string{"mpi", "openmp", "cpu", "amdgpu"},
		CPU:         true,
		GPU:         true,
		NativeMPI:   true,
		Notes:       "Fully integrated. AMDGPU sub-backend is simulated by the chunked CPU kernels (HIP+MPI lacked complete upstream support at development time).",
	}
}

func (b *nwqsim) Execute(spec core.CircuitSpec, opts core.RunOptions) (core.ExecResult, error) {
	c, err := parseSpec(spec)
	if err != nil {
		return core.ExecResult{}, err
	}
	return b.executeParsed(c, nil, opts)
}

// ExecuteBatch implements core.BatchExecutor: rebind each element into the
// cached parse of the ansatz — with its fusion plan built once per batch —
// and run it on the selected engine.
func (b *nwqsim) ExecuteBatch(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]core.ExecResult, error) {
	return runBatch(b.cache, spec, bindings, opts, b.executeParsed)
}

func (b *nwqsim) executeParsed(c *circuitT, plan *circuit.FusionPlan, opts core.RunOptions) (core.ExecResult, error) {
	if err := checkStateVectorBudget(c.NQubits, b.env.MemBudgetBytes); err != nil {
		return core.ExecResult{}, err
	}
	sub := normalizeSub(opts.Subbackend, "mpi")
	switch sub {
	case "mpi":
		return b.runDistributed(c, opts)
	case "openmp", "amdgpu":
		workers := opts.ProcsPerNode
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		counts, ev := simulateSV(c, plan, opts.Shots, workers, newRNG(opts), opts.Observable)
		return core.ExecResult{Counts: counts, ExpVal: ev}, nil
	case "cpu":
		counts, ev := simulateSV(c, plan, opts.Shots, 1, newRNG(opts), opts.Observable)
		return core.ExecResult{Counts: counts, ExpVal: ev}, nil
	default:
		return core.ExecResult{}, fmt.Errorf("nwqsim: unknown sub-backend %q", sub)
	}
}

// runDistributed spawns an MPI process group on the DVM per the requested
// (#N, #P) placement and runs the partitioned state-vector engine.
func (b *nwqsim) runDistributed(c *circuitT, opts core.RunOptions) (core.ExecResult, error) {
	var diag func(int) float64
	if opts.Observable != nil {
		if !opts.Observable.IsDiagonal() {
			return core.ExecResult{}, fmt.Errorf("nwqsim/mpi: general Pauli observables are not distributed; use the openmp sub-backend")
		}
		diag = opts.Observable.EnergyOfIndex
	}
	nodes := opts.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	if nodes > b.env.DVM.Nodes() {
		nodes = b.env.DVM.Nodes()
	}
	ppn := opts.ProcsPerNode
	if ppn <= 0 {
		ppn = 4
	}
	// Total ranks must be a power of two and cannot exceed 2^n amplitudes.
	total := clampPow2(nodes * ppn)
	for total > 1<<uint(c.NQubits) {
		total /= 2
	}
	useNodes := nodes
	if total < nodes {
		useNodes = total
	}
	pg, err := b.env.DVM.Spawn(prte.Placement{Nodes: useNodes, ProcsPerNode: (total + useNodes - 1) / useNodes})
	if err != nil {
		return core.ExecResult{}, fmt.Errorf("nwqsim: %w", err)
	}
	// The spawn may round up ranks beyond a power of two when total does not
	// divide evenly; rebuild a world of exactly `total` ranks placed on the
	// first `total` slots.
	world := mpi.NewWorld(total, mpi.WithPlacement(pg.Places[:total], b.env.Machine.Net))
	var counts map[string]int
	var expVal *float64
	runErr := func() error {
		defer pg.Release()
		return world.Run(func(comm *mpi.Comm) error {
			got, ev, err := statevec.RunDistributedObs(comm, c, opts.Shots, seedOf(opts), diag)
			if comm.Rank() == 0 {
				counts = got
				expVal = ev
			}
			return err
		})
	}()
	if runErr != nil {
		return core.ExecResult{}, runErr
	}
	return core.ExecResult{Counts: counts, ExpVal: expVal, Extra: map[string]float64{"ranks": float64(total)}}, nil
}
