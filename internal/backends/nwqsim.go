package backends

import (
	"fmt"
	"runtime"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/faults"
	"qfw/internal/mpi"
	"qfw/internal/prte"
	"qfw/internal/statevec"
)

// spawnRetry bounds the re-attempts at forming an MPI world when the DVM's
// core slots are transiently exhausted by concurrent process groups. The
// delays are sub-millisecond: slots free as soon as a neighbouring group
// finishes its run.
var spawnRetry = faults.Policy{MaxAttempts: 3, BaseDelay: 200 * time.Microsecond, MaxDelay: 2 * time.Millisecond}

// nwqsim is the SV-Sim analog: a state-vector engine whose native MPI
// distribution makes it the strong performer on large entangled workloads
// (GHZ, HAM) and large HHL instances in the paper. The mpi sub-backend runs
// the fusion-aware distributed engine: fused stage execution with
// bit-permutation remap exchanges, rank-local diagonal layers, and
// distributed diagonal/general-Pauli observables.
type nwqsim struct {
	env   *core.Env
	cache *core.ParseCache
}

func newNWQSim(env *core.Env) (core.Executor, error) {
	return &nwqsim{env: env, cache: core.NewParseCache()}, nil
}

func (b *nwqsim) Name() string { return "nwqsim" }

func (b *nwqsim) Capabilities() core.Capabilities {
	return core.Capabilities{
		Backend:             "nwqsim",
		Subbackends:         []string{"mpi", "openmp", "cpu", "amdgpu"},
		CPU:                 true,
		GPU:                 true,
		NativeMPI:           true,
		Gradients:           true,
		DeterministicSeeded: true,
		Notes:               "Fully integrated. AMDGPU sub-backend is simulated by the chunked CPU kernels (HIP+MPI lacked complete upstream support at development time). Adjoint gradients run node-local on the chunked kernels for every sub-backend.",
	}
}

func (b *nwqsim) Execute(spec core.CircuitSpec, opts core.RunOptions) (core.ExecResult, error) {
	c, err := parseSpec(spec)
	if err != nil {
		return core.ExecResult{}, err
	}
	return b.executeParsed(c, nil, nil, opts)
}

// ExecuteBatch implements core.BatchExecutor. The mpi sub-backend gets a
// dedicated pipeline: one process group and one mpi.World persist across
// all K bindings (ranks spawn once per batch, not once per element), and
// the spec-hash fused plan from the ParseCache is shared by every element.
// Other sub-backends rebind each element into the cached parse and fan out
// across the local worker pool.
func (b *nwqsim) ExecuteBatch(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]core.ExecResult, error) {
	if normalizeSub(opts.Subbackend, "mpi") != "mpi" {
		return runBatch(b.cache, spec, bindings, opts, b.executeParsed)
	}
	base, plan, err := b.cache.GetFused(spec)
	if err != nil {
		return nil, fmt.Errorf("backend: bad circuit spec: %w", err)
	}
	if err := checkStateVectorBudget(base.NQubits, b.env.MemBudgetBytes); err != nil {
		return nil, err
	}
	pg, world, total, err := b.spawnWorld(base.NQubits, opts)
	if err != nil {
		// The MPI world would not form even after retries: degrade to the
		// node-local engine rather than failing the batch. Seeds are
		// unchanged, so the fallback reproduces the distributed results.
		return b.localFallbackBatch(spec, bindings, opts, err)
	}
	defer pg.Release()
	seeds := make([]int64, len(bindings))
	maps := make([]map[string]float64, len(bindings))
	for i, bd := range bindings {
		seeds[i] = opts.ForElement(i).Seed
		maps[i] = bd
	}
	res, err := statevec.RunDistributedBatch(world, statevec.DistBatch{
		Circuit:  base,
		Plan:     plan,
		Bindings: maps,
		Shots:    opts.Shots,
		Seeds:    seeds,
		Workers:  workersPerRank(total),
		Obs:      distObsFor(opts.Observable, base.NQubits),
	})
	if err != nil {
		return nil, err
	}
	out := make([]core.ExecResult, len(res))
	for i, r := range res {
		out[i] = core.ExecResult{Counts: r.Counts, ExpVal: r.ExpVal, Extra: map[string]float64{"ranks": float64(total)}}
	}
	return out, nil
}

// ExecuteGradient implements core.GradientExecutor. The adjoint sweep is
// rank-local by design (three full-width states with per-op reverse
// traffic distribute poorly next to the staged forward engine), so every
// sub-backend — mpi included — differentiates on the node-local chunked
// kernels; distributed execution stays the forward path's job.
func (b *nwqsim) ExecuteGradient(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]core.GradResult, error) {
	c, err := b.cache.Get(spec)
	if err != nil {
		return nil, fmt.Errorf("backend: bad circuit spec: %w", err)
	}
	if err := checkGradientBudget(c.NQubits, b.env.MemBudgetBytes); err != nil {
		return nil, err
	}
	workers := opts.ProcsPerNode
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return runGradient(b.cache, spec, bindings, opts, workers)
}

func (b *nwqsim) executeParsed(c *circuitT, plan *circuit.FusionPlan, sched *circuit.DistSchedule, opts core.RunOptions) (core.ExecResult, error) {
	if err := checkStateVectorBudget(c.NQubits, b.env.MemBudgetBytes); err != nil {
		return core.ExecResult{}, err
	}
	sub := normalizeSub(opts.Subbackend, "mpi")
	switch sub {
	case "mpi":
		return b.runDistributed(c, plan, opts)
	case "openmp", "amdgpu":
		workers := opts.ProcsPerNode
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		counts, ev := simulateSV(c, plan, sched, opts.Shots, workers, newRNG(opts), opts.Observable)
		return core.ExecResult{Counts: counts, ExpVal: ev}, nil
	case "cpu":
		counts, ev := simulateSV(c, plan, sched, opts.Shots, 1, newRNG(opts), opts.Observable)
		return core.ExecResult{Counts: counts, ExpVal: ev}, nil
	default:
		return core.ExecResult{}, fmt.Errorf("nwqsim: unknown sub-backend %q", sub)
	}
}

// distObsFor maps a wire-format observable onto the distributed engine's
// evaluation paths: diagonal operators use the basis-index fast path;
// anything with X/Y terms becomes a Pauli Hamiltonian evaluated by local
// basis change plus one energy Allreduce.
func distObsFor(o *core.Observable, n int) statevec.DistObs {
	if o == nil {
		return statevec.DistObs{}
	}
	if o.IsDiagonal() {
		return statevec.DistObs{Diag: o.EnergyOfIndex}
	}
	return statevec.DistObs{Ham: obsHamiltonian(o, n)}
}

// workersPerRank splits the host cores across the rank goroutines so the
// per-shard kernel pool does not oversubscribe the machine.
func workersPerRank(ranks int) int {
	w := runtime.GOMAXPROCS(0) / ranks
	if w < 1 {
		return 1
	}
	return w
}

// spawnWorld allocates an MPI process group on the DVM per the requested
// (#N, #P) placement and wraps it in a communicator world whose transfer
// costs follow the machine's interconnect model.
func (b *nwqsim) spawnWorld(nqubits int, opts core.RunOptions) (*prte.ProcGroup, *mpi.World, int, error) {
	nodes := opts.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	if nodes > b.env.DVM.Nodes() {
		nodes = b.env.DVM.Nodes()
	}
	ppn := opts.ProcsPerNode
	if ppn <= 0 {
		ppn = 4
	}
	// Total ranks must be a power of two and cannot exceed 2^n amplitudes.
	total := clampPow2(nodes * ppn)
	for total > 1<<uint(nqubits) {
		total /= 2
	}
	useNodes := nodes
	if total < nodes {
		useNodes = total
	}
	var pg *prte.ProcGroup
	err := spawnRetry.Do(func(int) error {
		var err error
		pg, err = b.env.DVM.Spawn(prte.Placement{Nodes: useNodes, ProcsPerNode: (total + useNodes - 1) / useNodes})
		return err
	})
	if err != nil {
		return nil, nil, 0, fmt.Errorf("nwqsim: %w", err)
	}
	// The spawn may round up ranks beyond a power of two when total does not
	// divide evenly; rebuild a world of exactly `total` ranks placed on the
	// first `total` slots.
	world := mpi.NewWorld(total, mpi.WithPlacement(pg.Places[:total], b.env.Machine.Net))
	return pg, world, total, nil
}

// localFallbackBatch is the graceful-degradation path when the MPI world
// cannot form: the whole batch runs on the node-local openmp engine and
// every result is tagged Extra["mpi_fallback"] so callers can see the
// route change. Failures report both the spawn and the local error.
func (b *nwqsim) localFallbackBatch(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions, spawnErr error) ([]core.ExecResult, error) {
	lopts := opts
	lopts.Subbackend = "openmp"
	results, err := runBatch(b.cache, spec, bindings, lopts, b.executeParsed)
	if err != nil {
		return nil, fmt.Errorf("nwqsim: local fallback failed: %w (after spawn failure: %v)", err, spawnErr)
	}
	for i := range results {
		if results[i].Extra == nil {
			results[i].Extra = map[string]float64{}
		}
		results[i].Extra["mpi_fallback"] = 1
	}
	return results, nil
}

// runDistributed executes one bound circuit on a fresh process group through
// the fused distributed engine.
func (b *nwqsim) runDistributed(c *circuitT, plan *circuit.FusionPlan, opts core.RunOptions) (core.ExecResult, error) {
	pg, world, total, err := b.spawnWorld(c.NQubits, opts)
	if err != nil {
		// Degrade a single distributed execution to the node-local engine,
		// tagged so the route change is visible.
		lopts := opts
		lopts.Subbackend = "openmp"
		res, lerr := b.executeParsed(c, plan, nil, lopts)
		if lerr != nil {
			return core.ExecResult{}, fmt.Errorf("nwqsim: local fallback failed: %w (after spawn failure: %v)", lerr, err)
		}
		if res.Extra == nil {
			res.Extra = map[string]float64{}
		}
		res.Extra["mpi_fallback"] = 1
		return res, nil
	}
	obs := distObsFor(opts.Observable, c.NQubits)
	workers := workersPerRank(total)
	var counts map[string]int
	var expVal *float64
	runErr := func() error {
		defer pg.Release()
		return world.Run(func(comm *mpi.Comm) error {
			got, ev, err := statevec.RunDistributedCircuit(comm, c, plan, opts.Shots, seedOf(opts), obs, workers)
			if comm.Rank() == 0 {
				counts = got
				expVal = ev
			}
			return err
		})
	}()
	if runErr != nil {
		return core.ExecResult{}, runErr
	}
	return core.ExecResult{Counts: counts, ExpVal: expVal, Extra: map[string]float64{"ranks": float64(total)}}, nil
}
