// Package backends implements the five backend QPM integrations of the
// paper's Table 1 against the core.Executor contract:
//
//   - nwqsim:  distributed state-vector engine with native MPI (SV-Sim),
//   - aer:     Qiskit-Aer analog with statevector / matrix_product_state /
//     stabilizer / automatic sub-backends,
//   - tnqvm:   TN-QVM wrapper selecting tensor topologies (ExaTN-MPS
//     working, TTN pending, PEPS planned),
//   - qtensor: tree tensor-network contraction (numpy sub-backend, MPI via
//     output-variable slicing; cupy/pytorch planned),
//   - ionq:    cloud QPU provider over REST (simulator sub-backend working,
//     hardware planned).
//
// Each backend registers itself with the core registry from init, so
// importing this package makes every backend available to core.Launch.
package backends

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/mps"
	"qfw/internal/pauli"
	"qfw/internal/statevec"
)

// register all backends with the orchestration core.
func init() {
	core.RegisterBackend("nwqsim", newNWQSim)
	core.RegisterBackend("aer", newAer)
	core.RegisterBackend("tnqvm", newTNQVM)
	core.RegisterBackend("qtensor", newQTensor)
	core.RegisterBackend("ionq", newIonQ)
}

// circuitT and pauliHam alias frequently used types for brevity.
type (
	circuitT = circuit.Circuit
	pauliHam = pauli.Hamiltonian
)

// parseSpec decodes the standardized circuit description for single-shot
// execution. Parametric specs must go through the batch path, which supplies
// the bindings.
func parseSpec(spec core.CircuitSpec) (*circuit.Circuit, error) {
	c, err := spec.Circuit()
	if err != nil {
		return nil, fmt.Errorf("backend: bad circuit spec: %w", err)
	}
	if !c.IsBound() {
		return nil, fmt.Errorf("backend: parametric spec %q requires batch execution (unbound params %v)", spec.Name, c.ParamNames())
	}
	return c, nil
}

// runBatch is the shared BatchExecutor implementation of the local
// simulator backends: the spec is parsed — and its gate-fusion plan built —
// once through the backend's cache, then every element rebinds into the
// cached circuit and runs, so a batch of K evaluations pays the QASM parse
// and fusion-planning cost once per ansatz, not K times. Above the tuner's
// qubit threshold the cache-blocked tile schedule is compiled once per
// ansatz too (GetStaged) and handed to every element; a nil schedule means
// the per-op fused path. The QPM hands batch-native executors the whole
// batch, so the elements run here on a core-bounded worker pool (the
// per-batch analog of the QRC fan-out), each with its own deterministic
// slot and derived seed.
func runBatch(cache *core.ParseCache, spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions,
	run func(c *circuitT, plan *circuit.FusionPlan, sched *circuit.DistSchedule, opts core.RunOptions) (core.ExecResult, error)) ([]core.ExecResult, error) {
	base, plan, err := cache.GetFused(spec)
	if err != nil {
		return nil, fmt.Errorf("backend: bad circuit spec: %w", err)
	}
	var sched *circuit.DistSchedule
	if tun := statevec.CurrentTuning(); base.NQubits >= tun.MinQubits {
		if _, _, s, err := cache.GetStaged(spec, tun.TileBitsFor(base.NQubits)); err == nil {
			sched = s
		}
	}
	out := make([]core.ExecResult, len(bindings))
	errs := make([]error, len(bindings))
	core.FanOut(len(bindings), runtime.GOMAXPROCS(0), func(i int) {
		c := base.Bind(bindings[i])
		if !c.IsBound() {
			errs[i] = fmt.Errorf("backend: binding leaves params %v unbound (batch element %d)", c.ParamNames(), i)
			return
		}
		res, err := run(c, plan, sched, opts.ForElement(i))
		if err != nil {
			errs[i] = fmt.Errorf("batch element %d: %w", i, err)
			return
		}
		out[i] = res
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// compiledMPS fetches the routed MPS execution schedule of a spec through
// the backend's ParseCache: parse, transpile, fusion-plan, and swap-route
// once per distinct spec content, so a batch of K bindings shares one
// compiled schedule exactly like the state-vector engines share a fusion
// plan.
func compiledMPS(cache *core.ParseCache, spec core.CircuitSpec) (*mps.Compiled, error) {
	v, err := cache.Memo(spec, "mps-schedule", func(c *circuit.Circuit) (any, error) {
		return mps.CompileCircuit(c)
	})
	if err != nil {
		return nil, fmt.Errorf("backend: bad circuit spec: %w", err)
	}
	return v.(*mps.Compiled), nil
}

// runMPSOne executes one binding of a compiled MPS schedule and marshals
// the unified result: counts, cumulative discarded weight, the
// multiplicative fidelity estimate, and the exact <H> when an observable is
// attached.
func runMPSOne(cc *mps.Compiled, binding core.Bindings, opts core.RunOptions, defaultBond, workers int) (core.ExecResult, error) {
	mopt := mps.Options{MaxBond: opts.MaxBond, Cutoff: opts.Cutoff, Workers: workers}
	if mopt.MaxBond <= 0 {
		mopt.MaxBond = defaultBond
	}
	m, err := cc.Execute(binding, mopt)
	if err != nil {
		return core.ExecResult{}, err
	}
	defer m.Release()
	var ev *float64
	if opts.Observable != nil {
		v := m.ExpectationHamiltonian(obsHamiltonian(opts.Observable, cc.N))
		ev = &v
	}
	shots := opts.Shots
	if shots <= 0 {
		shots = 1024
	}
	counts := m.Sample(shots, newRNG(opts))
	return core.ExecResult{
		Counts:   counts,
		TruncErr: m.TruncErr,
		ExpVal:   ev,
		Extra: map[string]float64{
			"mps_fidelity":  m.Fidelity(),
			"mps_peak_bond": float64(m.PeakBond()),
			"mps_swaps":     float64(cc.Swaps),
		},
	}, nil
}

// runMPSSingle is the one-shot (Execute) MPS path: fetch the compiled
// schedule through the cache (no extra parse) and run the single element.
// Parametric specs are rejected here — single execution has no bindings.
func runMPSSingle(cache *core.ParseCache, spec core.CircuitSpec, opts core.RunOptions, defaultBond, workers int) (core.ExecResult, error) {
	cc, err := compiledMPS(cache, spec)
	if err != nil {
		return core.ExecResult{}, err
	}
	if ps := cc.Params(); len(ps) > 0 {
		return core.ExecResult{}, fmt.Errorf("backend: parametric spec %q requires batch execution (unbound params %v)", spec.Name, ps)
	}
	return runMPSOne(cc, nil, opts, defaultBond, workers)
}

// runMPSBatch is the BatchExecutor body of the MPS sub-backends: one
// compiled schedule per spec, elements fanned across a core-bounded pool
// with per-element deterministic seeds (each element runs its kernels
// serially — the parallelism budget goes to the fan-out).
func runMPSBatch(cache *core.ParseCache, spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions, defaultBond int) ([]core.ExecResult, error) {
	cc, err := compiledMPS(cache, spec)
	if err != nil {
		return nil, err
	}
	out := make([]core.ExecResult, len(bindings))
	errs := make([]error, len(bindings))
	core.FanOut(len(bindings), runtime.GOMAXPROCS(0), func(i int) {
		res, err := runMPSOne(cc, bindings[i], opts.ForElement(i), defaultBond, 1)
		if err != nil {
			errs[i] = fmt.Errorf("batch element %d: %w", i, err)
			return
		}
		out[i] = res
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// seedOf derives the RNG seed for an execution.
func seedOf(opts core.RunOptions) int64 {
	if opts.Seed != 0 {
		return opts.Seed
	}
	return 12345
}

// newRNG builds the execution RNG.
func newRNG(opts core.RunOptions) *rand.Rand {
	return rand.New(rand.NewSource(seedOf(opts)))
}

// checkStateVectorBudget enforces the per-node memory budget for dense
// state-vector allocations: 16 bytes per amplitude (complex128).
func checkStateVectorBudget(n int, budget int64) error {
	if n >= 62 {
		return core.Infeasible("state vector of %d qubits", n)
	}
	need := int64(16) << uint(n)
	if need > budget {
		return core.Infeasible("state vector of %d qubits needs %d MiB, budget %d MiB",
			n, need>>20, budget>>20)
	}
	return nil
}

// clampPow2 returns the largest power of two <= v (at least 1).
func clampPow2(v int) int {
	if v < 1 {
		return 1
	}
	p := 1
	for p*2 <= v {
		p *= 2
	}
	return p
}

// obsHamiltonian converts a wire-format observable (diagonal fields and
// couplings plus general Pauli terms) into a Pauli Hamiltonian on n qubits.
func obsHamiltonian(o *core.Observable, n int) *pauli.Hamiltonian {
	fields := make([]float64, n)
	copy(fields, o.Fields)
	js := map[[2]int]float64{}
	for _, c := range o.Couplings {
		js[[2]int{c.I, c.J}] += c.V
	}
	h := pauli.IsingCost(fields, js)
	for _, t := range o.Paulis {
		terms := map[int]pauli.Op{}
		for q := 0; q < len(t.Ops) && q < n; q++ {
			switch t.Ops[q] {
			case 'X':
				terms[q] = pauli.X
			case 'Y':
				terms[q] = pauli.Y
			case 'Z':
				terms[q] = pauli.Z
			}
		}
		h.Add(t.Coeff, terms)
	}
	return h
}

// simulateSV runs the serial/chunked state-vector path with optional exact
// expectation (fast diagonal path; general Pauli sums via the full
// Pauli-apply contraction). Execution goes through the gate-fusion engine;
// plan may be nil (one-shot circuits plan on the spot) or the cached plan of
// the batch ansatz — it must have been built from c.StripMeasurements()'s
// structure. A non-nil sched is the batch's cached tile schedule: elements
// run the cache-blocked staged engine without re-partitioning; with a nil
// sched the engine decides per call. The amplitude buffer returns to the
// arena before the call returns, so batch elements recycle state memory
// instead of allocating 2^n complex128 each.
func simulateSV(c *circuitT, plan *circuit.FusionPlan, sched *circuit.DistSchedule, shots, workers int, rng *rand.Rand, obs *core.Observable) (map[string]int, *float64) {
	var s *statevec.State
	if sched != nil {
		s, _ = statevec.RunFusedStaged(c.StripMeasurements(), plan, sched, workers, rng)
	} else {
		s, _ = statevec.RunFused(c.StripMeasurements(), plan, workers, rng)
	}
	if shots <= 0 {
		shots = 1024
	}
	counts := s.SampleCounts(shots, rng)
	var ev *float64
	if obs != nil {
		var v float64
		if obs.IsDiagonal() {
			v = s.ExpectationDiagonal(obs.EnergyOfIndex)
		} else {
			v = s.ExpectationHamiltonian(obsHamiltonian(obs, c.NQubits))
		}
		ev = &v
	}
	s.Release()
	return counts, ev
}

// normalizeSub lowercases and trims a sub-backend name.
func normalizeSub(s, def string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return def
	}
	return s
}
