package backends

import (
	"math"
	"strings"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/core"
)

// gradAnsatz is a small symbolic circuit with a shared parameter.
func gradAnsatz() *circuit.Circuit {
	c := circuit.New(3)
	c.Name = "grad-ansatz"
	for q := 0; q < 3; q++ {
		c.H(q)
	}
	c.RZZ(0, 1, circuit.Sym("g", 2)).RZZ(1, 2, circuit.Sym("g", 2))
	for q := 0; q < 3; q++ {
		c.RX(q, circuit.Sym("b", 2))
	}
	c.MeasureAll()
	return c
}

var gradTestObs = &core.Observable{
	Fields:    []float64{0.4, -0.3, 0.2},
	Couplings: []core.Coupling{{I: 0, J: 1, V: 0.7}, {I: 1, J: 2, V: -0.5}},
}

// frontGradValue evaluates the observable at a binding through an ordinary
// run, for finite-difference checks.
func frontGradValue(t *testing.T, f *core.Frontend, b core.Bindings) float64 {
	t.Helper()
	bound := gradAnsatz().Bind(b)
	res, err := f.Run(bound, core.RunOptions{Shots: 16, Seed: 5, Observable: gradTestObs})
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpVal == nil {
		t.Fatal("no expectation value")
	}
	return *res.ExpVal
}

// TestFrontendGradientEndToEnd drives RunGradient through the full stack
// (frontend → DEFw RPC → QPM → gradient executor → adjoint engine) on every
// gradient-capable backend selection and checks values and gradients
// against finite differences of the ordinary execution path.
func TestFrontendGradientEndToEnd(t *testing.T) {
	s := launch(t)
	bindings := []core.Bindings{{"g": 0.35, "b": -0.6}, {"g": -1.1, "b": 0.2}}
	for _, props := range []core.Properties{
		{Backend: "aer", Subbackend: "statevector"},
		{Backend: "nwqsim", Subbackend: "openmp"},
		{Backend: "nwqsim", Subbackend: "mpi"},
		{Backend: "auto"},
	} {
		f, err := s.Frontend(props)
		if err != nil {
			t.Fatal(err)
		}
		if !f.SupportsGradients() {
			t.Fatalf("%s/%s: gradient capability not advertised", props.Backend, props.Subbackend)
		}
		results, err := f.RunGradient(gradAnsatz(), bindings, core.RunOptions{Seed: 5, Observable: gradTestObs})
		if err != nil {
			t.Fatalf("%s/%s: %v", props.Backend, props.Subbackend, err)
		}
		const eps = 1e-5
		for i, b := range bindings {
			if want := frontGradValue(t, f, b); math.Abs(results[i].Value-want) > 1e-9 {
				t.Fatalf("%s/%s element %d: value %.12g, want %.12g", props.Backend, props.Subbackend, i, results[i].Value, want)
			}
			// Params come back sorted: [b, g].
			for j, name := range []string{"b", "g"} {
				up := core.Bindings{"g": b["g"], "b": b["b"]}
				dn := core.Bindings{"g": b["g"], "b": b["b"]}
				up[name] += eps
				dn[name] -= eps
				fd := (frontGradValue(t, f, up) - frontGradValue(t, f, dn)) / (2 * eps)
				if math.Abs(results[i].Grad[j]-fd) > 1e-7 {
					t.Errorf("%s/%s element %d d/d%s: adjoint %.10g vs finite diff %.10g",
						props.Backend, props.Subbackend, i, name, results[i].Grad[j], fd)
				}
			}
		}
	}
}

// TestGradientCapabilityScoping checks the capability-row scoping: MPS and
// stabilizer selections must not advertise gradients, and execution against
// them fails cleanly.
func TestGradientCapabilityScoping(t *testing.T) {
	s := launch(t)
	f, err := s.Frontend(core.Properties{Backend: "aer", Subbackend: "matrix_product_state"})
	if err != nil {
		t.Fatal(err)
	}
	if f.SupportsGradients() {
		t.Fatal("aer/mps must not advertise gradients")
	}
	_, err = f.RunGradient(gradAnsatz(), []core.Bindings{{"g": 1, "b": 1}},
		core.RunOptions{Subbackend: "matrix_product_state", Observable: gradTestObs})
	if err == nil || !strings.Contains(err.Error(), "statevector") {
		t.Fatalf("expected statevector-only error, got %v", err)
	}
	for _, backend := range []string{"ionq", "qtensor", "tnqvm"} {
		f, err := s.Frontend(core.Properties{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		if f.SupportsGradients() {
			t.Fatalf("%s must not advertise gradients", backend)
		}
	}
}

// TestGradientRequiresObservable checks the missing-observable error path.
func TestGradientRequiresObservable(t *testing.T) {
	s := launch(t)
	f, err := s.Frontend(core.Properties{Backend: "aer", Subbackend: "statevector"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.RunGradient(gradAnsatz(), []core.Bindings{{"g": 1, "b": 1}}, core.RunOptions{}); err == nil {
		t.Fatal("expected observable-required error")
	}
}

// TestGradientPlansOncePerBatch asserts the spec-hash cache builds one
// gradient plan for a whole batch.
func TestGradientPlansOncePerBatch(t *testing.T) {
	env := testEnv(t)
	exec, err := newAer(env)
	if err != nil {
		t.Fatal(err)
	}
	b := exec.(*aer)
	spec, err := core.SpecFromParametric(gradAnsatz())
	if err != nil {
		t.Fatal(err)
	}
	bindings := make([]core.Bindings, 6)
	for i := range bindings {
		bindings[i] = core.Bindings{"g": float64(i) * 0.2, "b": -0.4}
	}
	if _, err := b.ExecuteGradient(spec, bindings, core.RunOptions{Observable: gradTestObs}); err != nil {
		t.Fatal(err)
	}
	if _, err := b.ExecuteGradient(spec, bindings, core.RunOptions{Observable: gradTestObs}); err != nil {
		t.Fatal(err)
	}
	if got := b.cache.Grads(); got != 1 {
		t.Fatalf("gradient plans built %d, want 1 per ansatz", got)
	}
}
