package backends

import (
	"qfw/internal/core"
	"qfw/internal/faults"
)

// The "faulty" backend is a registrable test target: the aer executor
// wrapped in the QFW_FAULTS injector under its own name, so a session can
// expose one deliberately unreliable backend next to healthy ones without
// wrapping everything. It only exists when the environment schedule is
// armed — an unset QFW_FAULTS keeps Table 1 and session listings clean.
func init() {
	if faults.FromEnv() != nil {
		core.RegisterBackend("faulty", newFaulty)
	}
}

func newFaulty(env *core.Env) (core.Executor, error) {
	sched := faults.FromEnv()
	if sched == nil {
		// Registered at init but unset by launch time: arm a benign
		// schedule-free injector equivalent (rate 0 marks nothing).
		sched = &faults.Schedule{Rate: 0, Nth: 0}
	}
	inner, err := newAer(env)
	if err != nil {
		return nil, err
	}
	return core.NewFaultyExecutor(inner, faults.NewInjector(*sched)).WithName("faulty"), nil
}
