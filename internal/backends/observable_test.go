package backends

import (
	"math"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/core"
)

// TestDiagonalObservableAllBackends checks that every backend returns a
// consistent <H> for a diagonal Ising observable over the same state.
func TestDiagonalObservableAllBackends(t *testing.T) {
	s := launch(t)
	// Prepare a biased product state: P(1) per qubit = sin^2(0.4/2).
	c := circuit.New(4)
	for q := 0; q < 4; q++ {
		c.RY(q, circuit.Bound(0.8))
	}
	c.MeasureAll()
	c.Name = "obs-test"
	obs := &core.Observable{
		Fields:    []float64{0.5, -0.25, 0.75, 0},
		Couplings: []core.Coupling{{I: 0, J: 1, V: 0.3}, {I: 2, J: 3, V: -0.6}},
	}
	// Exact value: <Z> per qubit = cos(0.8); couplings: cos^2(0.8).
	z := math.Cos(0.8)
	want := 0.5*z - 0.25*z + 0.75*z + 0.3*z*z - 0.6*z*z

	cases := []struct {
		props core.Properties
		exact bool // local simulators compute exactly; cloud estimates
	}{
		{core.Properties{Backend: "nwqsim", Subbackend: "MPI"}, true},
		{core.Properties{Backend: "nwqsim", Subbackend: "CPU"}, true},
		{core.Properties{Backend: "aer", Subbackend: "statevector"}, true},
		{core.Properties{Backend: "aer", Subbackend: "matrix_product_state"}, true},
		{core.Properties{Backend: "tnqvm", Subbackend: "exatn-mps"}, true},
		{core.Properties{Backend: "qtensor", Subbackend: "numpy"}, true},
		{core.Properties{Backend: "qtensor", Subbackend: "mpi"}, true},
		{core.Properties{Backend: "ionq", Subbackend: "simulator"}, false},
	}
	for _, tc := range cases {
		f, err := s.Frontend(tc.props)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(c, core.RunOptions{Shots: 4000, Seed: 7, Nodes: 2, ProcsPerNode: 2, Observable: obs})
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.props.Backend, tc.props.Subbackend, err)
		}
		if res.ExpVal == nil {
			t.Fatalf("%s/%s: no expectation value", tc.props.Backend, tc.props.Subbackend)
		}
		tol := 1e-9
		if !tc.exact {
			tol = 0.08 // shot noise at 4000 shots
		}
		if math.Abs(*res.ExpVal-want) > tol {
			t.Fatalf("%s/%s: <H> = %g, want %g (tol %g)", tc.props.Backend, tc.props.Subbackend, *res.ExpVal, want, tol)
		}
	}
}

// TestGeneralPauliObservableLocalOnly checks general Pauli sums: exact on
// local simulator backends — including the distributed nwqsim/mpi path,
// which basis-changes rank shards locally and Allreduces the energy —
// and rejected cleanly on the cloud path.
func TestGeneralPauliObservableLocalOnly(t *testing.T) {
	s := launch(t)
	c := circuit.New(2)
	c.H(0).CX(0, 1) // Bell state: <XX> = 1, <ZZ> = 1, <XI> = 0
	c.MeasureAll()
	c.Name = "pauli-obs"
	obs := &core.Observable{Paulis: []core.PauliTerm{
		{Coeff: 0.5, Ops: "XX"},
		{Coeff: 0.25, Ops: "ZZ"},
		{Coeff: 3.0, Ops: "XI"},
	}}
	want := 0.5 + 0.25

	for _, props := range []core.Properties{
		{Backend: "aer", Subbackend: "statevector"},
		{Backend: "aer", Subbackend: "matrix_product_state"},
		{Backend: "nwqsim", Subbackend: "OpenMP"},
		{Backend: "nwqsim", Subbackend: "MPI"},
		{Backend: "qtensor", Subbackend: "numpy"},
	} {
		f, err := s.Frontend(props)
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(c, core.RunOptions{Shots: 64, Seed: 1, Nodes: 1, ProcsPerNode: 2, Observable: obs})
		if err != nil {
			t.Fatalf("%s/%s: %v", props.Backend, props.Subbackend, err)
		}
		if res.ExpVal == nil || math.Abs(*res.ExpVal-want) > 1e-9 {
			t.Fatalf("%s/%s: <H> = %v, want %g", props.Backend, props.Subbackend, res.ExpVal, want)
		}
	}
	for _, props := range []core.Properties{
		{Backend: "ionq", Subbackend: "simulator"},
	} {
		f, err := s.Frontend(props)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run(c, core.RunOptions{Shots: 64, Seed: 1, Observable: obs}); err == nil {
			t.Fatalf("%s/%s accepted a general Pauli observable", props.Backend, props.Subbackend)
		}
	}
}

// TestAutoBackendThroughSession exercises the auto QPM over RPC.
func TestAutoBackendThroughSession(t *testing.T) {
	s := launch(t)
	f, err := s.Frontend(core.Properties{Backend: "auto"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(ghz(6), core.RunOptions{Shots: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Route == "" {
		t.Fatal("auto run missing route annotation")
	}
	checkGHZ(t, res.Counts, 6, 100)
	caps, err := f.Capabilities()
	if err != nil {
		t.Fatal(err)
	}
	if caps.Backend != "auto" {
		t.Fatalf("caps %+v", caps)
	}
}
