package backends

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/workloads"
)

// mpsAnsatz is a 6-qubit parametric nearest-neighbour ansatz used by the
// batch tests: structurally one spec, K bindings.
func mpsAnsatz() *circuit.Circuit {
	c := circuit.New(6)
	c.Name = "mps-ansatz"
	for q := 0; q < 6; q++ {
		c.H(q)
	}
	for i := 0; i+1 < 6; i++ {
		c.RZZ(i, i+1, circuit.Sym("gamma", 2))
	}
	for q := 0; q < 6; q++ {
		c.RX(q, circuit.Sym("beta", 2))
	}
	c.MeasureAll()
	return c
}

// TestMPSBatchCompileOncePerSpec is the compile-once regression of the MPS
// sub-backends: a K-element batch must parse the QASM once and build the
// routed schedule once (ParseCache.Memo), on both aer/matrix_product_state
// and tnqvm/exatn-mps.
func TestMPSBatchCompileOncePerSpec(t *testing.T) {
	env := testEnv(t)
	spec, err := core.SpecFromParametric(mpsAnsatz())
	if err != nil {
		t.Fatal(err)
	}
	const K = 8
	bindings := make([]core.Bindings, K)
	for i := range bindings {
		bindings[i] = core.Bindings{"gamma": 0.2 + 0.1*float64(i), "beta": 0.8 - 0.05*float64(i)}
	}
	cases := []struct {
		name  string
		sub   string
		make  func(*core.Env) (core.Executor, error)
		cache func(core.Executor) *core.ParseCache
	}{
		{"aer", "matrix_product_state", newAer, func(e core.Executor) *core.ParseCache { return e.(*aer).cache }},
		{"tnqvm", "exatn-mps", newTNQVM, func(e core.Executor) *core.ParseCache { return e.(*tnqvm).cache }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exec, err := tc.make(env)
			if err != nil {
				t.Fatal(err)
			}
			be := exec.(core.BatchExecutor)
			results, err := be.ExecuteBatch(spec, bindings, core.RunOptions{Shots: 256, Seed: 5, Subbackend: tc.sub})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != K {
				t.Fatalf("%d results, want %d", len(results), K)
			}
			cache := tc.cache(exec)
			if got := cache.Parses(); got != 1 {
				t.Fatalf("QASM parses = %d, want exactly 1 for the whole batch", got)
			}
			if got := cache.Memos(); got != 1 {
				t.Fatalf("compiled MPS schedules = %d, want exactly 1 for the whole batch", got)
			}
			for i, res := range results {
				if res.Extra["mps_fidelity"] <= 0 {
					t.Fatalf("element %d missing fidelity telemetry: %v", i, res.Extra)
				}
				if res.Extra["mps_peak_bond"] < 1 {
					t.Fatalf("element %d missing peak-bond telemetry", i)
				}
			}
		})
	}
}

// TestMPSBatchMatchesStandaloneExecute pins element semantics: batch
// element i must reproduce exactly what a standalone Execute of the bound
// circuit with the derived seed returns.
func TestMPSBatchMatchesStandaloneExecute(t *testing.T) {
	env := testEnv(t)
	ansatz := mpsAnsatz()
	spec, err := core.SpecFromParametric(ansatz)
	if err != nil {
		t.Fatal(err)
	}
	exec, err := newAer(env)
	if err != nil {
		t.Fatal(err)
	}
	be := exec.(core.BatchExecutor)
	bindings := []core.Bindings{
		{"gamma": 0.3, "beta": 0.7},
		{"gamma": 0.9, "beta": 0.2},
	}
	opts := core.RunOptions{Shots: 512, Seed: 11, Subbackend: "matrix_product_state"}
	batch, err := be.ExecuteBatch(spec, bindings, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range bindings {
		bound := ansatz.Bind(b)
		boundSpec, err := core.SpecFromCircuit(bound)
		if err != nil {
			t.Fatal(err)
		}
		single, err := exec.Execute(boundSpec, opts.ForElement(i))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single.Counts, batch[i].Counts) {
			t.Fatalf("element %d counts diverge from standalone execution", i)
		}
		if math.Abs(single.TruncErr-batch[i].TruncErr) > 1e-12 {
			t.Fatalf("element %d TruncErr diverges", i)
		}
	}
}

// TestAerMPSTFIM64Fidelity is the acceptance-scale check: a 64-qubit TFIM
// evolution — far beyond any dense engine's reach — runs through the real
// aer/matrix_product_state sub-backend under a bounded MaxBond with
// reported fidelity >= 0.999.
func TestAerMPSTFIM64Fidelity(t *testing.T) {
	env := testEnv(t)
	exec, err := newAer(env)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := core.SpecFromCircuit(workloads.TFIM(64, 4, 0.5, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Execute(spec, core.RunOptions{
		Shots: 64, Seed: 3, Subbackend: "matrix_product_state", MaxBond: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := res.Extra["mps_fidelity"]; f < 0.999 {
		t.Fatalf("TFIM-64 fidelity %g under MaxBond=32, want >= 0.999", f)
	}
	total := 0
	for key, n := range res.Counts {
		if len(key) != 64 {
			t.Fatalf("count key length %d, want 64", len(key))
		}
		total += n
	}
	if total != 64 {
		t.Fatalf("sampled %d shots", total)
	}
}

// TestAutoRoutesLargeNearestNeighbourToMPS pins the AutoExecutor routing
// decision of the issue: large-n nearest-neighbour circuits (the TFIM
// regime) must go to aer/matrix_product_state — and actually execute there,
// at a size where the dense engines are infeasible.
func TestAutoRoutesLargeNearestNeighbourToMPS(t *testing.T) {
	env := testEnv(t)
	execs := map[string]core.Executor{}
	for name, make := range map[string]func(*core.Env) (core.Executor, error){
		"aer": newAer, "nwqsim": newNWQSim, "qtensor": newQTensor, "tnqvm": newTNQVM,
	} {
		e, err := make(env)
		if err != nil {
			t.Fatal(err)
		}
		execs[name] = e
	}
	auto := core.NewAutoExecutor(execs)
	spec, err := core.SpecFromCircuit(workloads.TFIM(64, 4, 0.5, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	backend, sub, rule, err := auto.RouteFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if backend != "aer" || sub != "matrix_product_state" {
		t.Fatalf("route = %s/%s (%s), want aer/matrix_product_state", backend, sub, rule)
	}
	if rule != "cost-model" && rule != "nearest-neighbour" {
		t.Fatalf("unexpected routing rule %q", rule)
	}
	res, err := auto.Execute(spec, core.RunOptions{Shots: 32, Seed: 7, MaxBond: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Route, "aer/matrix_product_state") {
		t.Fatalf("result route %q", res.Route)
	}
	if res.Extra["mps_fidelity"] < 0.999 {
		t.Fatalf("auto-routed TFIM-64 fidelity %g", res.Extra["mps_fidelity"])
	}
}

// TestMPSRunOptionsKnobs pins that MaxBond and Cutoff flow from RunOptions
// into the engine: a harsh bond cap on an entangling workload must report
// more discarded weight than the default.
func TestMPSRunOptionsKnobs(t *testing.T) {
	env := testEnv(t)
	exec, err := newAer(env)
	if err != nil {
		t.Fatal(err)
	}
	// A deep ring-QAOA block entangles enough to truncate at MaxBond=2.
	spec, err := core.SpecFromCircuit(workloads.RingQAOA(10, 3))
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := exec.Execute(spec, core.RunOptions{Shots: 64, Seed: 2, Subbackend: "mps", MaxBond: 2})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := exec.Execute(spec, core.RunOptions{Shots: 64, Seed: 2, Subbackend: "mps"})
	if err != nil {
		t.Fatal(err)
	}
	if harsh.TruncErr <= loose.TruncErr {
		t.Fatalf("MaxBond=2 discarded %g, default discarded %g — the knob is not wired", harsh.TruncErr, loose.TruncErr)
	}
	if harsh.Extra["mps_fidelity"] >= loose.Extra["mps_fidelity"] {
		t.Fatalf("fidelity should drop under the harsh cap")
	}
}
