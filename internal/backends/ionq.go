package backends

import (
	"fmt"
	"time"

	"qfw/internal/core"
	"qfw/internal/ionq"
)

// ionqBackend is the remote QPU path: circuits go out as REST calls to a
// cloud service (the simulated IonQ endpoint), results come back by
// polling. Only the "simulator" sub-backend is exercised, as in the paper;
// "hardware" is planned.
type ionqBackend struct {
	env     *core.Env
	service *ionq.Service
	client  *ionq.Client
	cache   *core.ParseCache
}

func newIonQ(env *core.Env) (core.Executor, error) {
	lat := env.CloudLatency
	if lat <= 0 {
		lat = 40 * time.Millisecond
	}
	jitter := env.CloudJitter
	if jitter <= 0 {
		jitter = 20 * time.Millisecond
	}
	conc := env.CloudConcurrency
	if conc <= 0 {
		conc = 1
	}
	svc, err := ionq.Start(ionq.Config{
		Latency:     lat,
		Jitter:      jitter,
		QueueDelay:  lat / 2,
		Concurrency: conc,
		Seed:        env.Seed + 7,
	})
	if err != nil {
		return nil, fmt.Errorf("ionq: cloud service failed to start: %w", err)
	}
	return &ionqBackend{env: env, service: svc, client: ionq.NewClient(svc.URL()), cache: core.NewParseCache()}, nil
}

func (b *ionqBackend) Name() string { return "ionq" }

func (b *ionqBackend) Capabilities() core.Capabilities {
	return core.Capabilities{
		Backend:     "ionq",
		Subbackends: []string{"simulator", "hardware"},
		Notes:       "Cloud provider integrated via REST (QiskitBackendV2-style plugin in the original). Tested extensively with the simulator sub-backend.",
	}
}

// Close shuts the embedded cloud service down at session teardown.
func (b *ionqBackend) Close() error {
	b.service.Close()
	return nil
}

// URL exposes the cloud endpoint (tests and examples hit it directly).
func (b *ionqBackend) URL() string { return b.service.URL() }

// checkOpts rejects unusable options before any cloud interaction: an
// unsupported sub-backend, or a non-diagonal observable (undecidable from
// counts) that would otherwise waste every execution in the request.
func (b *ionqBackend) checkOpts(opts core.RunOptions) error {
	switch normalizeSub(opts.Subbackend, "simulator") {
	case "simulator":
	case "hardware":
		return fmt.Errorf("ionq: hardware %w", core.ErrPlanned)
	default:
		return fmt.Errorf("ionq: unknown sub-backend %q", opts.Subbackend)
	}
	if opts.Observable != nil && !opts.Observable.IsDiagonal() {
		return fmt.Errorf("ionq: only diagonal observables are estimable from cloud counts")
	}
	return nil
}

// countsResult converts a cloud counts histogram into the unified result:
// expectation values can only be shot estimates, exactly like real hardware.
func countsResult(counts map[string]int, obs *core.Observable) (core.ExecResult, error) {
	var ev *float64
	if obs != nil {
		if !obs.IsDiagonal() {
			return core.ExecResult{}, fmt.Errorf("ionq: only diagonal observables are estimable from cloud counts")
		}
		v := obs.FromCounts(counts)
		ev = &v
	}
	return core.ExecResult{Counts: counts, ExpVal: ev}, nil
}

// ExecuteBatch implements core.BatchExecutor on the cloud path: the ansatz
// parses once into the cache, every element rebinds and serializes, and the
// whole batch maps onto one REST job array — one round trip to submit and
// one long-poll round trip to collect, instead of a submit+poll loop per
// evaluation.
func (b *ionqBackend) ExecuteBatch(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]core.ExecResult, error) {
	if err := b.checkOpts(opts); err != nil {
		return nil, err
	}
	base, err := b.cache.Get(spec)
	if err != nil {
		return nil, fmt.Errorf("ionq: bad circuit spec: %w", err)
	}
	qasms := make([]string, len(bindings))
	for i, bind := range bindings {
		bound := base.Bind(bind)
		if !bound.IsBound() {
			return nil, fmt.Errorf("ionq: binding leaves params %v unbound (batch element %d)", bound.ParamNames(), i)
		}
		if qasms[i], err = bound.ToQASM(); err != nil {
			return nil, fmt.Errorf("ionq: batch element %d: %w", i, err)
		}
	}
	shots := opts.Shots
	if shots <= 0 {
		shots = 1024
	}
	ids, err := b.client.SubmitBatch(spec.Name, qasms, shots)
	if err != nil {
		return nil, fmt.Errorf("ionq: submit batch: %w", err)
	}
	allCounts, err := b.client.WaitBatch(ids)
	if err != nil {
		return nil, fmt.Errorf("ionq: %w", err)
	}
	out := make([]core.ExecResult, len(bindings))
	for i, counts := range allCounts {
		if out[i], err = countsResult(counts, opts.Observable); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (b *ionqBackend) Execute(spec core.CircuitSpec, opts core.RunOptions) (core.ExecResult, error) {
	if err := b.checkOpts(opts); err != nil {
		return core.ExecResult{}, err
	}
	shots := opts.Shots
	if shots <= 0 {
		shots = 1024
	}
	id, err := b.client.Submit(spec.Name, spec.QASM, shots)
	if err != nil {
		return core.ExecResult{}, fmt.Errorf("ionq: submit: %w", err)
	}
	counts, err := b.client.Wait(id, 15*time.Millisecond)
	if err != nil {
		return core.ExecResult{}, fmt.Errorf("ionq: %w", err)
	}
	return countsResult(counts, opts.Observable)
}
