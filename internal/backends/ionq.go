package backends

import (
	"fmt"
	"time"

	"qfw/internal/core"
	"qfw/internal/ionq"
)

// ionqBackend is the remote QPU path: circuits go out as REST calls to a
// cloud service (the simulated IonQ endpoint), results come back by
// polling. Only the "simulator" sub-backend is exercised, as in the paper;
// "hardware" is planned.
type ionqBackend struct {
	env     *core.Env
	service *ionq.Service
	client  *ionq.Client
}

func newIonQ(env *core.Env) (core.Executor, error) {
	lat := env.CloudLatency
	if lat <= 0 {
		lat = 40 * time.Millisecond
	}
	jitter := env.CloudJitter
	if jitter <= 0 {
		jitter = 20 * time.Millisecond
	}
	conc := env.CloudConcurrency
	if conc <= 0 {
		conc = 1
	}
	svc, err := ionq.Start(ionq.Config{
		Latency:     lat,
		Jitter:      jitter,
		QueueDelay:  lat / 2,
		Concurrency: conc,
		Seed:        env.Seed + 7,
	})
	if err != nil {
		return nil, fmt.Errorf("ionq: cloud service failed to start: %w", err)
	}
	return &ionqBackend{env: env, service: svc, client: ionq.NewClient(svc.URL())}, nil
}

func (b *ionqBackend) Name() string { return "ionq" }

func (b *ionqBackend) Capabilities() core.Capabilities {
	return core.Capabilities{
		Backend:     "ionq",
		Subbackends: []string{"simulator", "hardware"},
		Notes:       "Cloud provider integrated via REST (QiskitBackendV2-style plugin in the original). Tested extensively with the simulator sub-backend.",
	}
}

// Close shuts the embedded cloud service down at session teardown.
func (b *ionqBackend) Close() error {
	b.service.Close()
	return nil
}

// URL exposes the cloud endpoint (tests and examples hit it directly).
func (b *ionqBackend) URL() string { return b.service.URL() }

func (b *ionqBackend) Execute(spec core.CircuitSpec, opts core.RunOptions) (core.ExecResult, error) {
	sub := normalizeSub(opts.Subbackend, "simulator")
	switch sub {
	case "simulator":
	case "hardware":
		return core.ExecResult{}, fmt.Errorf("ionq: hardware %w", core.ErrPlanned)
	default:
		return core.ExecResult{}, fmt.Errorf("ionq: unknown sub-backend %q", opts.Subbackend)
	}
	shots := opts.Shots
	if shots <= 0 {
		shots = 1024
	}
	id, err := b.client.Submit(spec.Name, spec.QASM, shots)
	if err != nil {
		return core.ExecResult{}, fmt.Errorf("ionq: submit: %w", err)
	}
	counts, err := b.client.Wait(id, 15*time.Millisecond)
	if err != nil {
		return core.ExecResult{}, fmt.Errorf("ionq: %w", err)
	}
	// Cloud backends cannot access the state: the expectation is the
	// shot-based estimate, exactly like real hardware.
	var ev *float64
	if opts.Observable != nil {
		if !opts.Observable.IsDiagonal() {
			return core.ExecResult{}, fmt.Errorf("ionq: only diagonal observables are estimable from cloud counts")
		}
		v := opts.Observable.FromCounts(counts)
		ev = &v
	}
	return core.ExecResult{Counts: counts, ExpVal: ev}, nil
}
