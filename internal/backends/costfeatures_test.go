package backends

import (
	"math/rand"
	"testing"

	"qfw/internal/conformance"
	"qfw/internal/core"
	"qfw/internal/cost"
)

// TestBondEstimateBoundsMeasuredPeak validates the cost model's entanglement
// bound against the engine it predicts for: over the conformance corpus
// (random circuits over the full shared gate set, long-range placements
// included), the measured MPS peak bond must never exceed the extractor's
// estimate. The bond cap is left far above saturation so the measurement is
// the true untruncated peak.
func TestBondEstimateBoundsMeasuredPeak(t *testing.T) {
	env := testEnv(t)
	exec, err := newAer(env)
	if err != nil {
		t.Fatal(err)
	}
	for n := 2; n <= 8; n++ {
		for seed := int64(1); seed <= 4; seed++ {
			rng := rand.New(rand.NewSource(seed*100 + int64(n)))
			c := conformance.RandomCircuit(rng, n, 6*n)
			c.MeasureAll()
			f := cost.Extract(c, nil)
			spec, err := core.SpecFromCircuit(c)
			if err != nil {
				t.Fatal(err)
			}
			res, err := exec.Execute(spec, core.RunOptions{
				Shots: 16, Seed: seed, Subbackend: "matrix_product_state", MaxBond: 4096,
			})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			peak := int(res.Extra["mps_peak_bond"])
			if peak < 1 {
				t.Fatalf("n=%d seed=%d: missing peak-bond telemetry", n, seed)
			}
			if peak > f.EstPeakBond() {
				t.Fatalf("n=%d seed=%d: measured peak bond %d exceeds estimate %d (bits %d, swaps %d)",
					n, seed, peak, f.EstPeakBond(), f.BondBits, f.RouteSwaps)
			}
		}
	}
}
