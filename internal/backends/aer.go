package backends

import (
	"fmt"
	"runtime"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/cost"
	"qfw/internal/mps"
	"qfw/internal/stabilizer"
)

// aer is the Qiskit-Aer analog: a strong single-node simulator with several
// sub-backends. Its matrix_product_state engine is the star of the paper's
// TFIM results; statevector uses chunked multi-core kernels (Aer's
// "chunking" MPI mode does not scale beyond one node, which the paper calls
// out for QAOA — reproduced here by capping workers at one node's cores).
type aer struct {
	env   *core.Env
	cache *core.ParseCache
}

func newAer(env *core.Env) (core.Executor, error) {
	return &aer{env: env, cache: core.NewParseCache()}, nil
}

func (b *aer) Name() string { return "aer" }

func (b *aer) Capabilities() core.Capabilities {
	return core.Capabilities{
		Backend:             "aer",
		Subbackends:         []string{"statevector", "matrix_product_state", "stabilizer", "automatic"},
		CPU:                 true,
		GPU:                 true,
		NativeMPI:           true,
		Gradients:           true,
		GradientSubs:        []string{"statevector", "automatic"},
		DeterministicSeeded: true,
		Notes:               "Strong single-node performance; MPI uses chunking and is capped at one node. GPU (CUDA) path simulated by chunked CPU kernels; HIP/ROCm requires a custom build. Adjoint gradients on the statevector engine; matrix_product_state runs the compiled fusion-aware MPS schedule (MaxBond/Cutoff via RunOptions).",
	}
}

func (b *aer) Execute(spec core.CircuitSpec, opts core.RunOptions) (core.ExecResult, error) {
	c, err := b.cache.Get(spec)
	if err != nil {
		return core.ExecResult{}, fmt.Errorf("backend: bad circuit spec: %w", err)
	}
	sub, err := b.resolveSub(c, opts)
	if err != nil {
		return core.ExecResult{}, err
	}
	if sub == "matrix_product_state" {
		res, err := runMPSSingle(b.cache, spec, opts, mps.DefaultMaxBond, b.chunkWorkers(opts))
		if err != nil {
			return core.ExecResult{}, fmt.Errorf("aer/mps: %w", err)
		}
		return res, nil
	}
	if !c.IsBound() {
		return core.ExecResult{}, fmt.Errorf("backend: parametric spec %q requires batch execution (unbound params %v)", spec.Name, c.ParamNames())
	}
	return b.executeParsed(c, nil, nil, sub, opts)
}

// ExecuteBatch implements core.BatchExecutor: rebind each element into the
// cached parse of the ansatz — with its fusion plan (or compiled MPS
// schedule) built once per batch — and run it on the selected sub-backend.
func (b *aer) ExecuteBatch(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]core.ExecResult, error) {
	// Get (not GetFused): an MPS batch builds its own plan on the
	// transpiled circuit, so the dense fusion plan would be wasted work;
	// the non-MPS path builds it lazily inside runBatch.
	base, err := b.cache.Get(spec)
	if err != nil {
		return nil, fmt.Errorf("backend: bad circuit spec: %w", err)
	}
	sub, err := b.resolveSub(base, opts)
	if err != nil {
		return nil, err
	}
	if sub == "matrix_product_state" {
		res, err := runMPSBatch(b.cache, spec, bindings, opts, mps.DefaultMaxBond)
		if err != nil {
			return nil, fmt.Errorf("aer/mps: %w", err)
		}
		return res, nil
	}
	return runBatch(b.cache, spec, bindings, opts,
		func(c *circuitT, plan *circuit.FusionPlan, sched *circuit.DistSchedule, opts core.RunOptions) (core.ExecResult, error) {
			return b.executeParsed(c, plan, sched, sub, opts)
		})
}

// resolveSub normalizes the requested sub-backend, resolving "automatic"
// against the circuit structure.
func (b *aer) resolveSub(c *circuitT, opts core.RunOptions) (string, error) {
	sub := normalizeSub(opts.Subbackend, "automatic")
	switch sub {
	case "automatic":
		return b.selectAutomatic(c), nil
	case "statevector", "stabilizer":
		return sub, nil
	case "matrix_product_state", "mps":
		return "matrix_product_state", nil
	}
	return "", fmt.Errorf("aer: unknown sub-backend %q", opts.Subbackend)
}

// ExecuteGradient implements core.GradientExecutor on the dense statevector
// engine (the only aer sub-backend with direct amplitude access; MPS and
// stabilizer requests are rejected rather than silently rerouted).
func (b *aer) ExecuteGradient(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]core.GradResult, error) {
	switch sub := normalizeSub(opts.Subbackend, "automatic"); sub {
	case "automatic", "statevector":
	default:
		return nil, fmt.Errorf("aer: adjoint gradients need the statevector sub-backend, got %q", sub)
	}
	c, err := b.cache.Get(spec)
	if err != nil {
		return nil, fmt.Errorf("backend: bad circuit spec: %w", err)
	}
	if err := checkGradientBudget(c.NQubits, b.env.MemBudgetBytes); err != nil {
		return nil, err
	}
	return runGradient(b.cache, spec, bindings, opts, b.chunkWorkers(opts))
}

// executeParsed runs the non-MPS sub-backends (the MPS path dispatches at
// the spec level so its compiled schedule can live in the cache).
func (b *aer) executeParsed(c *circuitT, plan *circuit.FusionPlan, sched *circuit.DistSchedule, sub string, opts core.RunOptions) (core.ExecResult, error) {
	switch sub {
	case "statevector":
		if err := checkStateVectorBudget(c.NQubits, b.env.MemBudgetBytes); err != nil {
			return core.ExecResult{}, err
		}
		workers := b.chunkWorkers(opts)
		counts, ev := simulateSV(c, plan, sched, opts.Shots, workers, newRNG(opts), opts.Observable)
		return core.ExecResult{Counts: counts, ExpVal: ev}, nil
	case "stabilizer":
		counts, err := stabilizer.Simulate(c, opts.Shots, newRNG(opts))
		if err != nil {
			return core.ExecResult{}, fmt.Errorf("aer/stabilizer: %w", err)
		}
		var ev *float64
		if opts.Observable != nil {
			if !opts.Observable.IsDiagonal() {
				return core.ExecResult{}, fmt.Errorf("aer/stabilizer: only diagonal observables are estimable from counts")
			}
			v := opts.Observable.FromCounts(counts)
			ev = &v
		}
		return core.ExecResult{Counts: counts, ExpVal: ev}, nil
	}
	return core.ExecResult{}, fmt.Errorf("aer: unreachable sub-backend %q", sub)
}

// selectAutomatic reproduces Aer's "automatic" method selection with the
// structural signals available to the IR: Clifford circuits go to the
// stabilizer engine; low-entanglement circuits go to MPS — strictly
// nearest-neighbour structure, or any circuit whose cost-model entanglement
// bound (cost.Extract) proves the default bond cap is lossless, so a sparse
// long-range circuit no longer falls through to the dense engine; everything
// else gets the dense state vector when it fits, MPS otherwise.
func (b *aer) selectAutomatic(c *circuitT) string {
	if c.IsClifford() {
		return "stabilizer"
	}
	svFits := checkStateVectorBudget(c.NQubits, b.env.MemBudgetBytes) == nil
	if c.NQubits >= 12 {
		if c.InteractionDistance() <= 1 {
			return "matrix_product_state"
		}
		if f := cost.Extract(c, nil); f.EstPeakBond() <= mps.DefaultMaxBond {
			return "matrix_product_state"
		}
	}
	if svFits {
		return "statevector"
	}
	return "matrix_product_state"
}

// chunkWorkers caps the chunked kernel parallelism at a single node's
// usable cores (Aer does not strong-scale past one node).
func (b *aer) chunkWorkers(opts core.RunOptions) int {
	w := opts.ProcsPerNode
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if len(b.env.Nodes) > 0 {
		if cap := b.env.Nodes[0].UsableCores(); w > cap {
			w = cap
		}
	}
	return w
}
