package backends

import (
	"fmt"
	"runtime"

	"qfw/internal/core"
)

// tnqvm is the TN-QVM analog: a thin wrapper over a tensor-network library
// (ExaTN in the original) that selects the network topology as a
// sub-backend. As in the paper's Table 1, only exatn-mps is exercised:
// TTN is pending (blocked by the .xasm vs .qasm frontend mismatch) and PEPS
// is architecturally supported but planned.
type tnqvm struct {
	env   *core.Env
	cache *core.ParseCache
}

func newTNQVM(env *core.Env) (core.Executor, error) {
	return &tnqvm{env: env, cache: core.NewParseCache()}, nil
}

func (b *tnqvm) Name() string { return "tnqvm" }

func (b *tnqvm) Capabilities() core.Capabilities {
	return core.Capabilities{
		Backend:             "tnqvm",
		Subbackends:         []string{"exatn-mps", "ttn", "peps"},
		CPU:                 true,
		GPU:                 true,
		NativeMPI:           true,
		DeterministicSeeded: true,
		Notes:               "Tensor-network simulator; wrapper selects topology. Tested with exatn-mps. TTN currently blocked by .xasm vs .qasm; PEPS is architecturally supported.",
	}
}

func (b *tnqvm) Execute(spec core.CircuitSpec, opts core.RunOptions) (core.ExecResult, error) {
	if err := b.checkSub(opts); err != nil {
		return core.ExecResult{}, err
	}
	res, err := runMPSSingle(b.cache, spec, opts, tnqvmDefaultBond, runtime.GOMAXPROCS(0))
	if err != nil {
		return core.ExecResult{}, fmt.Errorf("tnqvm/exatn-mps: %w", err)
	}
	return res, nil
}

// ExecuteBatch implements core.BatchExecutor: the spec compiles once per
// batch into the routed MPS schedule (parse, transpile, fusion plan, swap
// route — all keyed by spec hash in the ParseCache) and every element
// rebinds into it.
func (b *tnqvm) ExecuteBatch(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]core.ExecResult, error) {
	if err := b.checkSub(opts); err != nil {
		return nil, err
	}
	res, err := runMPSBatch(b.cache, spec, bindings, opts, tnqvmDefaultBond)
	if err != nil {
		return nil, fmt.Errorf("tnqvm/exatn-mps: %w", err)
	}
	return res, nil
}

// tnqvmDefaultBond is ExaTN-MPS's default bond cap: slightly more
// conservative than Aer's, reflecting its general-network heritage.
const tnqvmDefaultBond = 48

func (b *tnqvm) checkSub(opts core.RunOptions) error {
	switch normalizeSub(opts.Subbackend, "exatn-mps") {
	case "exatn-mps":
		return nil
	case "ttn":
		return fmt.Errorf("tnqvm: TTN %w (blocked by .xasm vs .qasm)", core.ErrPending)
	case "peps":
		return fmt.Errorf("tnqvm: PEPS %w", core.ErrPlanned)
	default:
		return fmt.Errorf("tnqvm: unknown sub-backend %q", opts.Subbackend)
	}
}
