package backends

import (
	"fmt"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/mps"
)

// tnqvm is the TN-QVM analog: a thin wrapper over a tensor-network library
// (ExaTN in the original) that selects the network topology as a
// sub-backend. As in the paper's Table 1, only exatn-mps is exercised:
// TTN is pending (blocked by the .xasm vs .qasm frontend mismatch) and PEPS
// is architecturally supported but planned.
type tnqvm struct {
	env   *core.Env
	cache *core.ParseCache
}

func newTNQVM(env *core.Env) (core.Executor, error) {
	return &tnqvm{env: env, cache: core.NewParseCache()}, nil
}

func (b *tnqvm) Name() string { return "tnqvm" }

func (b *tnqvm) Capabilities() core.Capabilities {
	return core.Capabilities{
		Backend:     "tnqvm",
		Subbackends: []string{"exatn-mps", "ttn", "peps"},
		CPU:         true,
		GPU:         true,
		NativeMPI:   true,
		Notes:       "Tensor-network simulator; wrapper selects topology. Tested with exatn-mps. TTN currently blocked by .xasm vs .qasm; PEPS is architecturally supported.",
	}
}

func (b *tnqvm) Execute(spec core.CircuitSpec, opts core.RunOptions) (core.ExecResult, error) {
	if err := b.checkSub(opts); err != nil {
		return core.ExecResult{}, err
	}
	c, err := parseSpec(spec)
	if err != nil {
		return core.ExecResult{}, err
	}
	return b.executeParsed(c, opts)
}

// ExecuteBatch implements core.BatchExecutor: rebind each element into the
// cached parse of the ansatz and contract it on the MPS engine.
func (b *tnqvm) ExecuteBatch(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]core.ExecResult, error) {
	if err := b.checkSub(opts); err != nil {
		return nil, err
	}
	return runBatch(b.cache, spec, bindings, opts,
		func(c *circuitT, _ *circuit.FusionPlan, opts core.RunOptions) (core.ExecResult, error) {
			return b.executeParsed(c, opts)
		})
}

func (b *tnqvm) checkSub(opts core.RunOptions) error {
	switch normalizeSub(opts.Subbackend, "exatn-mps") {
	case "exatn-mps":
		return nil
	case "ttn":
		return fmt.Errorf("tnqvm: TTN %w (blocked by .xasm vs .qasm)", core.ErrPending)
	case "peps":
		return fmt.Errorf("tnqvm: PEPS %w", core.ErrPlanned)
	default:
		return fmt.Errorf("tnqvm: unknown sub-backend %q", opts.Subbackend)
	}
}

func (b *tnqvm) executeParsed(c *circuitT, opts core.RunOptions) (core.ExecResult, error) {
	// ExaTN-MPS defaults differ slightly from Aer's MPS engine: a more
	// conservative bond cap reflecting its general-network heritage.
	maxBond := opts.MaxBond
	if maxBond <= 0 {
		maxBond = 48
	}
	var ham *pauliHam
	if opts.Observable != nil {
		ham = obsHamiltonian(opts.Observable, c.NQubits)
	}
	counts, truncErr, ev, err := mps.SimulateWithExpectation(c, opts.Shots, maxBond, opts.Cutoff, newRNG(opts), ham)
	if err != nil {
		return core.ExecResult{}, fmt.Errorf("tnqvm/exatn-mps: %w", err)
	}
	return core.ExecResult{Counts: counts, TruncErr: truncErr, ExpVal: ev}, nil
}
