package backends

import (
	"fmt"

	"qfw/internal/core"
	"qfw/internal/mps"
)

// tnqvm is the TN-QVM analog: a thin wrapper over a tensor-network library
// (ExaTN in the original) that selects the network topology as a
// sub-backend. As in the paper's Table 1, only exatn-mps is exercised:
// TTN is pending (blocked by the .xasm vs .qasm frontend mismatch) and PEPS
// is architecturally supported but planned.
type tnqvm struct {
	env *core.Env
}

func newTNQVM(env *core.Env) (core.Executor, error) {
	return &tnqvm{env: env}, nil
}

func (b *tnqvm) Name() string { return "tnqvm" }

func (b *tnqvm) Capabilities() core.Capabilities {
	return core.Capabilities{
		Backend:     "tnqvm",
		Subbackends: []string{"exatn-mps", "ttn", "peps"},
		CPU:         true,
		GPU:         true,
		NativeMPI:   true,
		Notes:       "Tensor-network simulator; wrapper selects topology. Tested with exatn-mps. TTN currently blocked by .xasm vs .qasm; PEPS is architecturally supported.",
	}
}

func (b *tnqvm) Execute(spec core.CircuitSpec, opts core.RunOptions) (core.ExecResult, error) {
	sub := normalizeSub(opts.Subbackend, "exatn-mps")
	switch sub {
	case "exatn-mps":
	case "ttn":
		return core.ExecResult{}, fmt.Errorf("tnqvm: TTN %w (blocked by .xasm vs .qasm)", core.ErrPending)
	case "peps":
		return core.ExecResult{}, fmt.Errorf("tnqvm: PEPS %w", core.ErrPlanned)
	default:
		return core.ExecResult{}, fmt.Errorf("tnqvm: unknown sub-backend %q", opts.Subbackend)
	}
	c, err := parseSpec(spec)
	if err != nil {
		return core.ExecResult{}, err
	}
	// ExaTN-MPS defaults differ slightly from Aer's MPS engine: a more
	// conservative bond cap reflecting its general-network heritage.
	maxBond := opts.MaxBond
	if maxBond <= 0 {
		maxBond = 48
	}
	var ham *pauliHam
	if opts.Observable != nil {
		ham = obsHamiltonian(opts.Observable, c.NQubits)
	}
	counts, truncErr, ev, err := mps.SimulateWithExpectation(c, opts.Shots, maxBond, opts.Cutoff, newRNG(opts), ham)
	if err != nil {
		return core.ExecResult{}, fmt.Errorf("tnqvm/exatn-mps: %w", err)
	}
	return core.ExecResult{Counts: counts, TruncErr: truncErr, ExpVal: ev}, nil
}
