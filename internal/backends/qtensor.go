package backends

import (
	"fmt"
	"sort"
	"strings"

	"qfw/internal/circuit"
	"qfw/internal/core"
	"qfw/internal/mpi"
	"qfw/internal/prte"
	"qfw/internal/statevec"
	"qfw/internal/tensornet"
)

// qtensor is the QTensor/qtree analog: tree tensor-network contraction.
// As in the paper, QFw drives it for full-state contraction, which makes it
// competitive on shallow circuits but sharply slower past ~24 qubits. The
// "mpi" sub-backend distributes output-variable slices across ranks, the
// same mechanism qtree uses via mpi4py.
type qtensor struct {
	env   *core.Env
	cache *core.ParseCache
}

func newQTensor(env *core.Env) (core.Executor, error) {
	return &qtensor{env: env, cache: core.NewParseCache()}, nil
}

func (b *qtensor) Name() string { return "qtensor" }

func (b *qtensor) Capabilities() core.Capabilities {
	return core.Capabilities{
		Backend:             "qtensor",
		Subbackends:         []string{"numpy", "mpi", "cupy", "pytorch"},
		CPU:                 true,
		GPU:                 true,
		NativeMPI:           true,
		DeterministicSeeded: true,
		Notes:               "Tree TN (qtree). Designed for QAOA expectation estimation on sparse QUBOs, used by QFw for full-state contraction. Tested thoroughly with numpy; MPI via output-variable slicing.",
	}
}

func (b *qtensor) Execute(spec core.CircuitSpec, opts core.RunOptions) (core.ExecResult, error) {
	c, err := parseSpec(spec)
	if err != nil {
		return core.ExecResult{}, err
	}
	return b.executeParsed(c, opts)
}

// ExecuteBatch implements core.BatchExecutor: rebind each element into the
// cached parse of the ansatz and contract it per element. runBatch goes
// through cache.GetFused, so the QASM parse (and fusion plan, unused here)
// is paid once per spec, never per binding — pinned by the parse-count
// regression in TestLocalBackendsBatchParseOnce.
func (b *qtensor) ExecuteBatch(spec core.CircuitSpec, bindings []core.Bindings, opts core.RunOptions) ([]core.ExecResult, error) {
	return runBatch(b.cache, spec, bindings, opts,
		func(c *circuitT, _ *circuit.FusionPlan, _ *circuit.DistSchedule, opts core.RunOptions) (core.ExecResult, error) {
			return b.executeParsed(c, opts)
		})
}

func (b *qtensor) executeParsed(c *circuitT, opts core.RunOptions) (core.ExecResult, error) {
	sub := normalizeSub(opts.Subbackend, "numpy")
	switch sub {
	case "cupy":
		return core.ExecResult{}, fmt.Errorf("qtensor: cupy %w", core.ErrPlanned)
	case "pytorch":
		return core.ExecResult{}, fmt.Errorf("qtensor: pytorch %w", core.ErrPlanned)
	case "numpy", "mpi":
	default:
		return core.ExecResult{}, fmt.Errorf("qtensor: unknown sub-backend %q", opts.Subbackend)
	}
	if c.NQubits > tensornet.MaxOpenQubits {
		return core.ExecResult{}, core.Infeasible("qtensor: full-state contraction of %d qubits exceeds cap %d", c.NQubits, tensornet.MaxOpenQubits)
	}
	if err := checkStateVectorBudget(c.NQubits, b.env.MemBudgetBytes); err != nil {
		return core.ExecResult{}, err
	}
	if sub == "numpy" {
		net, err := tensornet.Build(c)
		if err != nil {
			return core.ExecResult{}, fmt.Errorf("qtensor/numpy: %w", err)
		}
		amps, err := net.ContractAll()
		if err != nil {
			if strings.Contains(err.Error(), "exceeds cap") {
				return core.ExecResult{}, core.Infeasible("qtensor/numpy: %v", err)
			}
			return core.ExecResult{}, fmt.Errorf("qtensor/numpy: %w", err)
		}
		counts := sampleAmps(amps, c.NQubits, opts)
		return core.ExecResult{
			Counts: counts,
			ExpVal: expFromAmps(amps, opts.Observable),
			Extra:  map[string]float64{"peak_rank": float64(net.PeakRank)},
		}, nil
	}
	return b.runSliced(c, opts)
}

// runSliced contracts the network with the top log2(P) output variables
// fixed per rank, gathers the slices at rank 0, and samples there.
func (b *qtensor) runSliced(c *circuitT, opts core.RunOptions) (core.ExecResult, error) {
	nodes := opts.Nodes
	if nodes <= 0 {
		nodes = 1
	}
	if nodes > b.env.DVM.Nodes() {
		nodes = b.env.DVM.Nodes()
	}
	ppn := opts.ProcsPerNode
	if ppn <= 0 {
		ppn = 2
	}
	total := clampPow2(nodes * ppn)
	for total > 1<<uint(c.NQubits) {
		total /= 2
	}
	g := 0
	for 1<<uint(g) < total {
		g++
	}
	useNodes := nodes
	if total < nodes {
		useNodes = total
	}
	pg, err := b.env.DVM.Spawn(prte.Placement{Nodes: useNodes, ProcsPerNode: (total + useNodes - 1) / useNodes})
	if err != nil {
		return core.ExecResult{}, fmt.Errorf("qtensor: %w", err)
	}
	base, err := tensornet.Build(c)
	if err != nil {
		pg.Release()
		return core.ExecResult{}, err
	}
	world := mpi.NewWorld(total, mpi.WithPlacement(pg.Places[:total], b.env.Machine.Net))
	var counts map[string]int
	var expVal *float64
	runErr := func() error {
		defer pg.Release()
		return world.Run(func(comm *mpi.Comm) error {
			// Fix the top g output qubits to this rank's bits.
			fixed := map[int]int{}
			sliced := base.Slice(nil)
			for bit := 0; bit < g; bit++ {
				q := c.NQubits - 1 - bit
				fixed[base.Out[q]] = (comm.Rank() >> uint(g-1-bit)) & 1
			}
			if len(fixed) > 0 {
				sliced = base.Slice(fixed)
				for q := c.NQubits - g; q < c.NQubits; q++ {
					sliced.Out[q] = -1
				}
			}
			amps, err := sliced.ContractAll()
			if err != nil {
				return err
			}
			gathered := comm.Gather(0, amps)
			if comm.Rank() != 0 {
				return nil
			}
			full := make([]complex128, 0, 1<<uint(c.NQubits))
			for r := 0; r < total; r++ {
				full = append(full, gathered[r].([]complex128)...)
			}
			counts = sampleAmps(full, c.NQubits, opts)
			expVal = expFromAmps(full, opts.Observable)
			return nil
		})
	}()
	if runErr != nil {
		return core.ExecResult{}, runErr
	}
	return core.ExecResult{Counts: counts, ExpVal: expVal, Extra: map[string]float64{"ranks": float64(total)}}, nil
}

// expFromAmps evaluates an observable exactly over an amplitude vector
// (nil observable -> nil). General Pauli sums reuse the state-vector
// expectation machinery on the contracted amplitudes.
func expFromAmps(amps []complex128, obs *core.Observable) *float64 {
	if obs == nil {
		return nil
	}
	n := 0
	for 1<<uint(n) < len(amps) {
		n++
	}
	if !obs.IsDiagonal() {
		s := &statevec.State{N: n, Amp: amps, Workers: 1}
		v := s.ExpectationHamiltonian(obsHamiltonian(obs, n))
		return &v
	}
	var acc float64
	for i, a := range amps {
		p := real(a)*real(a) + imag(a)*imag(a)
		if p > 0 {
			acc += p * obs.EnergyOfIndex(i)
		}
	}
	return &acc
}

// sampleAmps draws counts from an amplitude vector.
func sampleAmps(amps []complex128, n int, opts core.RunOptions) map[string]int {
	shots := opts.Shots
	if shots <= 0 {
		shots = 1024
	}
	rng := newRNG(opts)
	cum := make([]float64, len(amps))
	var acc float64
	for i, a := range amps {
		acc += real(a)*real(a) + imag(a)*imag(a)
		cum[i] = acc
	}
	counts := make(map[string]int)
	for s := 0; s < shots; s++ {
		x := rng.Float64() * acc
		i := sort.SearchFloat64s(cum, x)
		if i >= len(cum) {
			i = len(cum) - 1
		}
		counts[statevec.FormatBits(i, n)]++
	}
	return counts
}
