package backends

import (
	"math"
	"strings"
	"testing"
	"time"

	"qfw/internal/circuit"
	"qfw/internal/cluster"
	"qfw/internal/core"
)

// launch boots a small full stack with every backend registered.
func launch(t *testing.T) *core.Session {
	t.Helper()
	s, err := core.Launch(core.Config{
		Machine:      cluster.Frontier(3),
		AppNodes:     1,
		QFwNodes:     2,
		Workers:      4,
		CloudLatency: 2 * time.Millisecond,
		CloudJitter:  time.Millisecond,
		Seed:         7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Teardown)
	return s
}

func ghz(n int) *circuit.Circuit {
	c := circuit.New(n)
	c.H(0)
	for i := 0; i+1 < n; i++ {
		c.CX(i, i+1)
	}
	c.MeasureAll()
	c.Name = "ghz"
	return c
}

func TestAllBackendsRegistered(t *testing.T) {
	names := core.RegisteredBackends()
	want := []string{"aer", "ionq", "nwqsim", "qtensor", "tnqvm"}
	if len(names) != len(want) {
		t.Fatalf("registered %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registered %v, want %v", names, want)
		}
	}
}

// checkGHZ asserts that counts look like a GHZ distribution.
func checkGHZ(t *testing.T, counts map[string]int, n, shots int) {
	t.Helper()
	zero := strings.Repeat("0", n)
	one := strings.Repeat("1", n)
	total := 0
	for key, c := range counts {
		if key != zero && key != one {
			t.Fatalf("non-GHZ outcome %q x%d", key, c)
		}
		total += c
	}
	if total != shots {
		t.Fatalf("total %d, want %d", total, shots)
	}
	if frac := float64(counts[zero]) / float64(shots); math.Abs(frac-0.5) > 0.12 {
		t.Fatalf("skewed GHZ: %v", counts)
	}
}

func TestSameCodeAllBackends(t *testing.T) {
	// The paper's headline capability: identical application code across all
	// backends, swapping only the properties.
	s := launch(t)
	cases := []core.Properties{
		{Backend: "nwqsim", Subbackend: "MPI"},
		{Backend: "nwqsim", Subbackend: "OpenMP"},
		{Backend: "nwqsim", Subbackend: "CPU"},
		{Backend: "aer", Subbackend: "statevector"},
		{Backend: "aer", Subbackend: "matrix_product_state"},
		{Backend: "aer", Subbackend: "stabilizer"},
		{Backend: "aer", Subbackend: "automatic"},
		{Backend: "tnqvm", Subbackend: "exatn-mps"},
		{Backend: "qtensor", Subbackend: "numpy"},
		{Backend: "qtensor", Subbackend: "mpi"},
		{Backend: "ionq", Subbackend: "simulator"},
	}
	c := ghz(6)
	for _, props := range cases {
		props := props
		t.Run(props.Backend+"/"+props.Subbackend, func(t *testing.T) {
			f, err := s.Frontend(props)
			if err != nil {
				t.Fatal(err)
			}
			res, err := f.Run(c, core.RunOptions{Shots: 600, Seed: 42, Nodes: 2, ProcsPerNode: 2})
			if err != nil {
				t.Fatal(err)
			}
			checkGHZ(t, res.Counts, 6, 600)
			if res.Backend != props.Backend {
				t.Fatalf("result backend %q", res.Backend)
			}
			if res.Timings.TotalMS <= 0 {
				t.Fatalf("missing timing: %+v", res.Timings)
			}
		})
	}
}

func TestPendingAndPlannedSubbackends(t *testing.T) {
	s := launch(t)
	cases := []struct {
		props core.Properties
		want  string
	}{
		{core.Properties{Backend: "tnqvm", Subbackend: "ttn"}, "pending"},
		{core.Properties{Backend: "tnqvm", Subbackend: "peps"}, "planned"},
		{core.Properties{Backend: "qtensor", Subbackend: "cupy"}, "planned"},
		{core.Properties{Backend: "qtensor", Subbackend: "pytorch"}, "planned"},
		{core.Properties{Backend: "ionq", Subbackend: "hardware"}, "planned"},
	}
	c := ghz(3)
	for _, tc := range cases {
		f, err := s.Frontend(tc.props)
		if err != nil {
			t.Fatal(err)
		}
		_, err = f.Run(c, core.RunOptions{Shots: 10})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s/%s: err = %v, want %q", tc.props.Backend, tc.props.Subbackend, err, tc.want)
		}
	}
}

func TestMemoryBudgetInfeasible(t *testing.T) {
	s, err := core.Launch(core.Config{
		Machine:        cluster.Frontier(2),
		Backends:       []string{"nwqsim", "aer"},
		MemBudgetBytes: 16 << 10, // 16 KiB: allows 10 qubits, rejects 12
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Teardown()
	f, err := s.Frontend(core.Properties{Backend: "nwqsim", Subbackend: "CPU"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(ghz(12), core.RunOptions{Shots: 10}); !core.IsInfeasible(err) {
		t.Fatalf("expected infeasible, got %v", err)
	}
	if _, err := f.Run(ghz(8), core.RunOptions{Shots: 10}); err != nil {
		t.Fatalf("8 qubits should fit: %v", err)
	}
	// Aer MPS must still work beyond the dense budget.
	fm, err := s.Frontend(core.Properties{Backend: "aer", Subbackend: "matrix_product_state"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fm.Run(ghz(16), core.RunOptions{Shots: 10}); err != nil {
		t.Fatalf("MPS should not hit the dense budget: %v", err)
	}
}

func TestAerAutomaticSelection(t *testing.T) {
	env := &core.Env{MemBudgetBytes: 1 << 30}
	b, err := newAer(env)
	if err != nil {
		t.Fatal(err)
	}
	a := b.(*aer)
	// Clifford -> stabilizer.
	cl := circuit.New(4)
	cl.H(0).CX(0, 1).CX(1, 2).CX(2, 3)
	if got := a.selectAutomatic(cl); got != "stabilizer" {
		t.Fatalf("clifford got %q", got)
	}
	// Large nearest-neighbour non-Clifford -> MPS.
	nn := circuit.New(16)
	for i := 0; i+1 < 16; i++ {
		nn.RZZ(i, i+1, circuit.Bound(0.3))
		nn.RX(i, circuit.Bound(0.1))
	}
	if got := a.selectAutomatic(nn); got != "matrix_product_state" {
		t.Fatalf("nn got %q", got)
	}
	// Small dense non-Clifford -> statevector.
	sv := circuit.New(5)
	sv.T(0).CX(0, 4).RZZ(1, 3, circuit.Bound(0.2))
	if got := a.selectAutomatic(sv); got != "statevector" {
		t.Fatalf("dense got %q", got)
	}
}

func TestUnknownSubbackendErrors(t *testing.T) {
	s := launch(t)
	for _, backend := range []string{"nwqsim", "aer", "tnqvm", "qtensor", "ionq"} {
		f, err := s.Frontend(core.Properties{Backend: backend, Subbackend: "bogus"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run(ghz(3), core.RunOptions{Shots: 8}); err == nil {
			t.Fatalf("%s accepted bogus sub-backend", backend)
		}
	}
}

func TestCapabilitiesTable(t *testing.T) {
	s := launch(t)
	for _, backend := range s.Backends() {
		f, err := s.Frontend(core.Properties{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		caps, err := f.Capabilities()
		if err != nil {
			t.Fatal(err)
		}
		if caps.Backend != backend || len(caps.Subbackends) == 0 {
			t.Fatalf("caps %+v", caps)
		}
	}
}

func TestStabilizerRejectsNonClifford(t *testing.T) {
	s := launch(t)
	f, err := s.Frontend(core.Properties{Backend: "aer", Subbackend: "stabilizer"})
	if err != nil {
		t.Fatal(err)
	}
	c := circuit.New(2)
	c.T(0).MeasureAll()
	if _, err := f.Run(c, core.RunOptions{Shots: 8}); err == nil {
		t.Fatal("stabilizer accepted a T gate")
	}
}

func TestUnregisteredBackendRejectedAtLaunch(t *testing.T) {
	_, err := core.Launch(core.Config{
		Machine:  cluster.Frontier(2),
		Backends: []string{"does-not-exist"},
	})
	if err == nil {
		t.Fatal("expected launch failure")
	}
}
