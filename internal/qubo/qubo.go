// Package qubo provides quadratic unconstrained binary optimization
// problems and the decomposition machinery DQAOA needs: random and
// metamaterial-structured instance generators, Ising conversion for QAOA
// ansätze, sub-QUBO extraction with clamped complement variables, and the
// random / impact-factor decomposition strategies of Kim et al.
package qubo

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"qfw/internal/pauli"
)

// QUBO is a symmetric matrix Q defining E(x) = x^T Q x over x in {0,1}^N.
// Diagonal entries are the linear terms.
type QUBO struct {
	N int
	Q [][]float64
}

// New returns an all-zero QUBO on n variables.
func New(n int) *QUBO {
	if n < 1 {
		panic("qubo: need at least one variable")
	}
	q := &QUBO{N: n, Q: make([][]float64, n)}
	for i := range q.Q {
		q.Q[i] = make([]float64, n)
	}
	return q
}

// Set assigns Q[i][j] (and Q[j][i]) keeping the matrix symmetric.
func (q *QUBO) Set(i, j int, v float64) {
	q.Q[i][j] = v
	q.Q[j][i] = v
}

// Energy evaluates x^T Q x for a 0/1 assignment.
func (q *QUBO) Energy(bits []int) float64 {
	if len(bits) != q.N {
		panic(fmt.Sprintf("qubo: assignment length %d for %d variables", len(bits), q.N))
	}
	var e float64
	for i := 0; i < q.N; i++ {
		if bits[i] == 0 {
			continue
		}
		e += q.Q[i][i]
		for j := i + 1; j < q.N; j++ {
			if bits[j] == 1 {
				e += 2 * q.Q[i][j]
			}
		}
	}
	return e
}

// Random generates a dense random symmetric QUBO with entries drawn from
// N(0, scale) and the given off-diagonal density.
func Random(n int, density, scale float64, rng *rand.Rand) *QUBO {
	if density <= 0 || density > 1 {
		density = 0.5
	}
	if scale <= 0 {
		scale = 1
	}
	q := New(n)
	for i := 0; i < n; i++ {
		q.Q[i][i] = rng.NormFloat64() * scale
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				q.Set(i, j, rng.NormFloat64()*scale/2)
			}
		}
	}
	return q
}

// Metamaterial generates the structured instance class behind the paper's
// DQAOA application (optimizing layered meta-material stacks, e.g. the
// transparent radiative cooler of Kim et al.): variable i is the material
// choice of layer i, neighbouring layers interact strongly, and the
// interaction decays with layer distance; a per-layer bias models the
// single-layer optical response.
func Metamaterial(n int, rng *rand.Rand) *QUBO {
	q := New(n)
	for i := 0; i < n; i++ {
		q.Q[i][i] = rng.NormFloat64()*0.5 - 0.2 // mild bias toward inclusion
		for j := i + 1; j < n; j++ {
			d := float64(j - i)
			coupling := rng.NormFloat64() / (d * d)
			if math.Abs(coupling) < 0.02 {
				continue
			}
			q.Set(i, j, coupling)
		}
	}
	return q
}

// ToIsing converts to an Ising cost Hamiltonian via x_i = (1 - z_i)/2,
// returning the per-qubit fields h, couplings J, and the constant offset so
// that E(x) = <H> + offset with H = Σ h_i Z_i + Σ J_ij Z_i Z_j.
func (q *QUBO) ToIsing() (h []float64, j map[[2]int]float64, offset float64) {
	h = make([]float64, q.N)
	j = make(map[[2]int]float64)
	for i := 0; i < q.N; i++ {
		offset += q.Q[i][i] / 2
		h[i] -= q.Q[i][i] / 2
		for k := i + 1; k < q.N; k++ {
			v := q.Q[i][k] // symmetric; total weight of the pair is 2v
			if v == 0 {
				continue
			}
			offset += v / 2
			h[i] -= v / 2
			h[k] -= v / 2
			j[[2]int{i, k}] += v / 2
		}
	}
	return h, j, offset
}

// CostHamiltonian returns the diagonal Ising Hamiltonian (without offset).
func (q *QUBO) CostHamiltonian() (*pauli.Hamiltonian, float64) {
	h, j, offset := q.ToIsing()
	return pauli.IsingCost(h, j), offset
}

// SubQUBO extracts the sub-problem over vars with every other variable
// clamped to the bits of the global assignment: linear terms absorb the
// couplings to the clamped complement. The returned mapping is vars itself
// (sub variable k corresponds to global variable vars[k]).
func (q *QUBO) SubQUBO(vars []int, global []int) *QUBO {
	inSub := make(map[int]int, len(vars))
	for k, v := range vars {
		if v < 0 || v >= q.N {
			panic(fmt.Sprintf("qubo: sub variable %d out of range", v))
		}
		if _, dup := inSub[v]; dup {
			panic(fmt.Sprintf("qubo: duplicate sub variable %d", v))
		}
		inSub[v] = k
	}
	sub := New(len(vars))
	for k, i := range vars {
		lin := q.Q[i][i]
		for j := 0; j < q.N; j++ {
			if j == i {
				continue
			}
			if _, ok := inSub[j]; ok {
				continue
			}
			if global[j] == 1 {
				lin += 2 * q.Q[i][j]
			}
		}
		sub.Q[k][k] = lin
		for l := k + 1; l < len(vars); l++ {
			sub.Set(k, l, q.Q[i][vars[l]])
		}
	}
	return sub
}

// Decomposition is a set of sub-problems, each a list of global variable
// indices.
type Decomposition [][]int

// RandomDecomposition deals the variables into nsubq groups of subqsize.
// When nsubq*subqsize exceeds N (as in every Table-2 configuration), the
// extra slots are filled with randomly repeated variables so that every
// variable appears at least once.
func RandomDecomposition(n, subqsize, nsubq int, rng *rand.Rand) Decomposition {
	if subqsize < 1 || nsubq < 1 {
		panic("qubo: invalid decomposition shape")
	}
	if subqsize > n {
		subqsize = n
	}
	perm := rng.Perm(n)
	groups := make(Decomposition, nsubq)
	idx := 0
	for g := range groups {
		groups[g] = make([]int, 0, subqsize)
	}
	// Deal every variable once, round-robin.
	for len(groups[idx%nsubq]) < subqsize && idx < n {
		groups[idx%nsubq] = append(groups[idx%nsubq], perm[idx])
		idx++
	}
	for ; idx < n; idx++ {
		// Remaining variables go to the group with the most space.
		best := 0
		for g := 1; g < nsubq; g++ {
			if len(groups[g]) < len(groups[best]) {
				best = g
			}
		}
		if len(groups[best]) >= subqsize {
			break
		}
		groups[best] = append(groups[best], perm[idx])
	}
	// Fill remaining slots with random non-duplicate variables.
	for g := range groups {
		have := map[int]bool{}
		for _, v := range groups[g] {
			have[v] = true
		}
		for len(groups[g]) < subqsize && len(have) < n {
			v := rng.Intn(n)
			if !have[v] {
				have[v] = true
				groups[g] = append(groups[g], v)
			}
		}
	}
	return groups
}

// ImpactFactor ranks variables by their total interaction magnitude
// d_i = sum_j |Q_ij| — the decomposition heuristic of Kim et al. that
// groups high-impact variables so they are re-optimized together.
func (q *QUBO) ImpactFactor() []float64 {
	d := make([]float64, q.N)
	for i := 0; i < q.N; i++ {
		for j := 0; j < q.N; j++ {
			d[i] += math.Abs(q.Q[i][j])
		}
	}
	return d
}

// ImpactDecomposition builds nsubq groups of subqsize by descending impact
// factor: the highest-impact variables fill the first group, and remaining
// slots wrap around so every variable is covered.
func (q *QUBO) ImpactDecomposition(subqsize, nsubq int) Decomposition {
	if subqsize > q.N {
		subqsize = q.N
	}
	impact := q.ImpactFactor()
	order := make([]int, q.N)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return impact[order[a]] > impact[order[b]] })
	groups := make(Decomposition, nsubq)
	pos := 0
	for g := 0; g < nsubq; g++ {
		have := map[int]bool{}
		for len(groups[g]) < subqsize {
			v := order[pos%q.N]
			pos++
			if have[v] {
				continue
			}
			have[v] = true
			groups[g] = append(groups[g], v)
		}
	}
	return groups
}

// Covered reports whether the decomposition touches every variable.
func (d Decomposition) Covered(n int) bool {
	seen := make([]bool, n)
	for _, g := range d {
		for _, v := range g {
			if v >= 0 && v < n {
				seen[v] = true
			}
		}
	}
	for _, s := range seen {
		if !s {
			return false
		}
	}
	return true
}
