package qubo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEnergyByHand(t *testing.T) {
	q := New(3)
	q.Q[0][0] = 1
	q.Q[1][1] = -2
	q.Set(0, 1, 0.5)
	q.Set(1, 2, -1)
	// x = (1,1,0): 1 - 2 + 2*0.5 = 0
	if e := q.Energy([]int{1, 1, 0}); math.Abs(e) > 1e-12 {
		t.Fatalf("E(110) = %g, want 0", e)
	}
	// x = (1,1,1): 1 - 2 + 0 + 2*0.5 + 2*(-1) = -2
	if e := q.Energy([]int{1, 1, 1}); math.Abs(e+2) > 1e-12 {
		t.Fatalf("E(111) = %g, want -2", e)
	}
	if e := q.Energy([]int{0, 0, 0}); e != 0 {
		t.Fatalf("E(000) = %g", e)
	}
}

func TestQuickIsingConversionMatchesEnergy(t *testing.T) {
	// Property: QUBO energy equals <H_Ising> + offset on every assignment.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		q := Random(n, 0.7, 1.0, rng)
		h, j, offset := q.ToIsing()
		ham := isingEnergy(h, j, offset)
		for trial := 0; trial < 20; trial++ {
			bits := make([]int, n)
			for i := range bits {
				bits[i] = rng.Intn(2)
			}
			if math.Abs(q.Energy(bits)-ham(bits)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// isingEnergy evaluates sum h_i z_i + sum J_ij z_i z_j + offset with
// z = 1-2x.
func isingEnergy(h []float64, j map[[2]int]float64, offset float64) func([]int) float64 {
	return func(bits []int) float64 {
		z := make([]float64, len(bits))
		for i, b := range bits {
			z[i] = 1 - 2*float64(b)
		}
		e := offset
		for i, hi := range h {
			e += hi * z[i]
		}
		for pair, jj := range j {
			e += jj * z[pair[0]] * z[pair[1]]
		}
		return e
	}
}

func TestCostHamiltonianDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := Random(5, 0.6, 1, rng)
	h, offset := q.CostHamiltonian()
	if !h.IsDiagonal() {
		t.Fatal("cost Hamiltonian not diagonal")
	}
	bits := []int{1, 0, 1, 1, 0}
	if math.Abs(h.DiagonalEnergy(bits)+offset-q.Energy(bits)) > 1e-9 {
		t.Fatal("Hamiltonian energy mismatch")
	}
}

func TestQuickSubQUBOEnergyIdentity(t *testing.T) {
	// Property: for any sub-problem and any sub-assignment,
	// E_global(merge) - E_global(base with sub vars cleared... ) differs
	// from E_sub(assignment) by a constant independent of the assignment.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(6)
		q := Random(n, 0.8, 1, rng)
		global := make([]int, n)
		for i := range global {
			global[i] = rng.Intn(2)
		}
		k := 2 + rng.Intn(3)
		vars := rng.Perm(n)[:k]
		sub := q.SubQUBO(vars, global)
		// Constant = E_global(assignment a) - E_sub(a_sub) must be equal
		// for all sub-assignments.
		var constant float64
		first := true
		for mask := 0; mask < 1<<uint(k); mask++ {
			merged := append([]int(nil), global...)
			subBits := make([]int, k)
			for i := 0; i < k; i++ {
				subBits[i] = (mask >> uint(i)) & 1
				merged[vars[i]] = subBits[i]
			}
			diff := q.Energy(merged) - sub.Energy(subBits)
			if first {
				constant = diff
				first = false
			} else if math.Abs(diff-constant) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDecompositionCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Table 2 configurations.
	cases := []struct{ n, sub, num int }{
		{30, 16, 2}, {30, 8, 4}, {30, 12, 3}, {40, 16, 4}, {40, 12, 4},
	}
	for _, tc := range cases {
		d := RandomDecomposition(tc.n, tc.sub, tc.num, rng)
		if len(d) != tc.num {
			t.Fatalf("(%d,%d): %d groups", tc.sub, tc.num, len(d))
		}
		for g, vars := range d {
			if len(vars) != tc.sub {
				t.Fatalf("group %d size %d, want %d", g, len(vars), tc.sub)
			}
			seen := map[int]bool{}
			for _, v := range vars {
				if seen[v] {
					t.Fatalf("group %d has duplicate var %d", g, v)
				}
				seen[v] = true
			}
		}
		if tc.sub*tc.num >= tc.n && !d.Covered(tc.n) {
			t.Fatalf("(%d,%d) on n=%d does not cover all variables", tc.sub, tc.num, tc.n)
		}
	}
}

func TestImpactDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := Metamaterial(30, rng)
	d := q.ImpactDecomposition(12, 3)
	if len(d) != 3 {
		t.Fatalf("groups %d", len(d))
	}
	impact := q.ImpactFactor()
	// The first group must contain the single highest-impact variable.
	maxVar := 0
	for i := range impact {
		if impact[i] > impact[maxVar] {
			maxVar = i
		}
	}
	found := false
	for _, v := range d[0] {
		if v == maxVar {
			found = true
		}
	}
	if !found {
		t.Fatalf("highest-impact var %d not in first group %v", maxVar, d[0])
	}
	if 12*3 >= 30 && !d.Covered(30) {
		t.Fatal("impact decomposition must cover all variables")
	}
}

func TestMetamaterialStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := Metamaterial(20, rng)
	// Neighbour couplings should dominate distant ones on average.
	var near, far float64
	var nNear, nFar int
	for i := 0; i < q.N; i++ {
		for j := i + 1; j < q.N; j++ {
			if q.Q[i][j] == 0 {
				continue
			}
			if j-i == 1 {
				near += math.Abs(q.Q[i][j])
				nNear++
			} else if j-i >= 5 {
				far += math.Abs(q.Q[i][j])
				nFar++
			}
		}
	}
	if nNear == 0 {
		t.Fatal("no neighbour couplings")
	}
	if nFar > 0 && far/float64(nFar) > near/float64(nNear) {
		t.Fatalf("distant couplings stronger than neighbours: %g vs %g", far/float64(nFar), near/float64(nNear))
	}
}
