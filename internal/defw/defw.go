// Package defw implements the Distributed Execution Framework: the
// lightweight RPC layer QFw uses between the application frontend and the
// Quantum Platform Manager services. It offers a TCP transport
// (length-prefixed JSON frames) for cross-process deployment and an
// in-process pipe transport for single-binary runs, with synchronous calls
// and asynchronous calls with correlation IDs — the mechanism behind QFw's
// non-blocking execution of variational workloads.
package defw

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// request is the wire format of a call.
type request struct {
	ID      uint64          `json:"id"`
	Service string          `json:"service"`
	Method  string          `json:"method"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// response is the wire format of a reply.
type response struct {
	ID      uint64          `json:"id"`
	Payload json.RawMessage `json:"payload,omitempty"`
	Err     string          `json:"err,omitempty"`
}

// Handler serves the methods of one registered service.
type Handler interface {
	Handle(method string, payload []byte) ([]byte, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(method string, payload []byte) ([]byte, error)

// Handle calls f.
func (f HandlerFunc) Handle(method string, payload []byte) ([]byte, error) {
	return f(method, payload)
}

// Server hosts services and serves connections.
type Server struct {
	mu       sync.RWMutex
	services map[string]Handler
	ln       net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{services: make(map[string]Handler), conns: make(map[net.Conn]struct{})}
}

// Register exposes a service under a name; re-registering replaces it.
func (s *Server) Register(name string, h Handler) {
	s.mu.Lock()
	s.services[name] = h
	s.mu.Unlock()
}

// Services lists registered service names.
func (s *Server) Services() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.services))
	for n := range s.services {
		out = append(out, n)
	}
	return out
}

// ListenTCP starts accepting connections on addr ("127.0.0.1:0" for an
// ephemeral port) and returns the bound address.
func (s *Server) ListenTCP(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.trackConn(conn)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.ServeConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

func (s *Server) trackConn(c net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		c.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.mu.Unlock()
}

// ServeConn synchronously serves one connection until it closes.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	var writeMu sync.Mutex
	var handlers sync.WaitGroup
	for {
		frame, err := readFrame(conn)
		if err != nil {
			break
		}
		var req request
		if err := json.Unmarshal(frame, &req); err != nil {
			break
		}
		handlers.Add(1)
		go func(req request) {
			defer handlers.Done()
			resp := s.dispatch(req)
			data, err := json.Marshal(resp)
			if err != nil {
				return
			}
			if uint64(len(data)) > uint64(maxFrameBytes) {
				// Replace an over-cap reply with a clean RPC error so the
				// caller gets an answer instead of a dead connection.
				resp = response{ID: resp.ID, Err: fmt.Sprintf("defw: response exceeds frame cap (%d bytes)", len(data))}
				data, err = json.Marshal(resp)
				if err != nil {
					return
				}
			}
			writeMu.Lock()
			writeFrame(conn, data)
			writeMu.Unlock()
		}(req)
	}
	handlers.Wait()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) dispatch(req request) response {
	s.mu.RLock()
	h, ok := s.services[req.Service]
	s.mu.RUnlock()
	if !ok {
		return response{ID: req.ID, Err: fmt.Sprintf("defw: unknown service %q", req.Service)}
	}
	defer func() {
		// Handler panics become RPC errors at the caller, not crashes here;
		// recovery happens in the wrapper below.
	}()
	payload, err := safeHandle(h, req.Method, req.Payload)
	if err != nil {
		return response{ID: req.ID, Err: err.Error()}
	}
	return response{ID: req.ID, Payload: payload}
}

func safeHandle(h Handler, method string, payload []byte) (out []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("defw: handler panic: %v", p)
		}
	}()
	return h.Handle(method, payload)
}

// Close stops the listener and closes active connections.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// maxFrameBytes caps one RPC frame in both directions. Oversized outbound
// frames (e.g. an enormous batch payload) fail their call cleanly before a
// single byte hits the wire, so the connection survives; only a peer that
// actually sends an oversized length prefix tears the transport down.
var maxFrameBytes = uint32(1 << 28)

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("defw: frame too large (%d bytes)", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFrame(w io.Writer, data []byte) error {
	if uint64(len(data)) > uint64(maxFrameBytes) {
		return fmt.Errorf("defw: frame too large (%d bytes, cap %d)", len(data), maxFrameBytes)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(data)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

// Call is an in-flight asynchronous RPC.
type Call struct {
	Done    chan struct{}
	payload []byte
	err     error
}

// Result blocks until completion and returns the reply.
func (c *Call) Result() ([]byte, error) {
	<-c.Done
	return c.payload, c.err
}

// Client is one connection to a DEFw server.
type Client struct {
	conn   net.Conn
	nextID atomic.Uint64

	writeMu sync.Mutex
	mu      sync.Mutex
	pending map[uint64]*Call
	closed  bool
}

// Dial connects to a DEFw server over TCP.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return newClient(conn), nil
}

// NewPipeClient connects to a server in-process through net.Pipe — the
// transport used when the whole stack runs in one binary (and the baseline
// for the RPC-transport ablation benchmark).
func NewPipeClient(s *Server) *Client {
	cliConn, srvConn := net.Pipe()
	s.trackConn(srvConn)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.ServeConn(srvConn)
	}()
	return newClient(cliConn)
}

func newClient(conn net.Conn) *Client {
	c := &Client{conn: conn, pending: make(map[uint64]*Call)}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	for {
		frame, err := readFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		var resp response
		if err := json.Unmarshal(frame, &resp); err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		call := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if call == nil {
			continue
		}
		if resp.Err != "" {
			call.err = errors.New(resp.Err)
		} else {
			call.payload = resp.Payload
		}
		close(call.Done)
	}
}

func (c *Client) failAll(err error) {
	c.mu.Lock()
	for id, call := range c.pending {
		call.err = fmt.Errorf("defw: connection lost: %w", err)
		close(call.Done)
		delete(c.pending, id)
	}
	c.closed = true
	c.mu.Unlock()
}

// Go issues an asynchronous call.
func (c *Client) Go(service, method string, payload []byte) *Call {
	call := &Call{Done: make(chan struct{})}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		call.err = errors.New("defw: client closed")
		close(call.Done)
		return call
	}
	id := c.nextID.Add(1)
	c.pending[id] = call
	c.mu.Unlock()

	req := request{ID: id, Service: service, Method: method, Payload: payload}
	data, err := json.Marshal(req)
	if err == nil {
		c.writeMu.Lock()
		err = writeFrame(c.conn, data)
		c.writeMu.Unlock()
	}
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		call.err = err
		close(call.Done)
	}
	return call
}

// Call issues a synchronous call.
func (c *Client) Call(service, method string, payload []byte) ([]byte, error) {
	return c.Go(service, method, payload).Result()
}

// Close tears the connection down, failing outstanding calls.
func (c *Client) Close() {
	c.conn.Close()
}

// CallJSON marshals req, performs a synchronous call, and unmarshals into resp.
func CallJSON(c *Client, service, method string, req, resp any) error {
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	out, err := c.Call(service, method, payload)
	if err != nil {
		return err
	}
	if resp == nil {
		return nil
	}
	return json.Unmarshal(out, resp)
}
