package defw

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoHandler returns its payload; method "fail" errors; "panic" panics;
// "slow" sleeps briefly to exercise async overlap.
func echoHandler(method string, payload []byte) ([]byte, error) {
	switch method {
	case "fail":
		return nil, fmt.Errorf("intentional failure")
	case "panic":
		panic("handler exploded")
	case "slow":
		time.Sleep(30 * time.Millisecond)
		return payload, nil
	default:
		return payload, nil
	}
}

func startTCP(t *testing.T) (*Server, *Client) {
	t.Helper()
	s := NewServer()
	s.Register("echo", HandlerFunc(echoHandler))
	addr, err := s.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return s, c
}

func TestSyncCallTCP(t *testing.T) {
	_, c := startTCP(t)
	out, err := c.Call("echo", "run", []byte(`{"x":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"x":1}` {
		t.Fatalf("echo got %s", out)
	}
}

func TestSyncCallPipe(t *testing.T) {
	s := NewServer()
	s.Register("echo", HandlerFunc(echoHandler))
	c := NewPipeClient(s)
	defer func() { c.Close(); s.Close() }()
	out, err := c.Call("echo", "run", []byte(`"hi"`))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"hi"` {
		t.Fatalf("got %s", out)
	}
}

func TestErrorPropagation(t *testing.T) {
	_, c := startTCP(t)
	_, err := c.Call("echo", "fail", nil)
	if err == nil || !strings.Contains(err.Error(), "intentional failure") {
		t.Fatalf("err = %v", err)
	}
}

func TestHandlerPanicBecomesError(t *testing.T) {
	_, c := startTCP(t)
	_, err := c.Call("echo", "panic", nil)
	if err == nil || !strings.Contains(err.Error(), "handler panic") {
		t.Fatalf("err = %v", err)
	}
	// Connection must survive a handler panic.
	if _, err := c.Call("echo", "ok", []byte(`1`)); err != nil {
		t.Fatalf("connection dead after panic: %v", err)
	}
}

func TestUnknownService(t *testing.T) {
	_, c := startTCP(t)
	_, err := c.Call("nope", "run", nil)
	if err == nil || !strings.Contains(err.Error(), "unknown service") {
		t.Fatalf("err = %v", err)
	}
}

func TestAsyncCallsOverlap(t *testing.T) {
	_, c := startTCP(t)
	start := time.Now()
	var calls []*Call
	for i := 0; i < 8; i++ {
		calls = append(calls, c.Go("echo", "slow", []byte(`1`)))
	}
	for _, call := range calls {
		if _, err := call.Result(); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// 8 x 30ms serialized would be 240ms; concurrent handling must be far less.
	if elapsed > 150*time.Millisecond {
		t.Fatalf("async calls appear serialized: %v", elapsed)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := NewServer()
	s.Register("echo", HandlerFunc(echoHandler))
	addr, err := s.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for j := 0; j < 20; j++ {
				msg := fmt.Sprintf(`{"i":%d,"j":%d}`, i, j)
				out, err := c.Call("echo", "run", []byte(msg))
				if err != nil {
					t.Error(err)
					return
				}
				if string(out) != msg {
					t.Errorf("got %s want %s", out, msg)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

func TestCallJSON(t *testing.T) {
	_, c := startTCP(t)
	type point struct {
		X, Y int
	}
	var out point
	if err := CallJSON(c, "echo", "run", point{X: 3, Y: 4}, &out); err != nil {
		t.Fatal(err)
	}
	if out.X != 3 || out.Y != 4 {
		t.Fatalf("round trip %+v", out)
	}
}

func TestClientCloseFailsPending(t *testing.T) {
	s := NewServer()
	s.Register("echo", HandlerFunc(echoHandler))
	addr, err := s.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	call := c.Go("echo", "slow", nil)
	c.Close()
	if _, err := call.Result(); err == nil {
		t.Fatal("expected pending call to fail on close")
	}
	// Calls after close fail fast.
	if _, err := c.Call("echo", "run", nil); err == nil {
		t.Fatal("expected error after close")
	}
}

func TestMalformedPayloadIsJSON(t *testing.T) {
	// The wire format is JSON; verify a response round-trips through the
	// declared structs.
	r := response{ID: 9, Payload: json.RawMessage(`{"ok":true}`)}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back response
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.ID != 9 {
		t.Fatalf("id %d", back.ID)
	}
}
