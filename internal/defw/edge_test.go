package defw

import (
	"bytes"
	"strings"
	"testing"
)

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	// Length prefix claiming 1 GiB must be refused before allocation.
	buf.Write([]byte{0x40, 0x00, 0x00, 0x00})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"hello":"world"}`)
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip %q", got)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 'x', 'y'}) // claims 10 bytes, has 2
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestLargePayloadThroughRPC(t *testing.T) {
	s := NewServer()
	s.Register("echo", HandlerFunc(func(m string, p []byte) ([]byte, error) { return p, nil }))
	c := NewPipeClient(s)
	defer func() { c.Close(); s.Close() }()
	// A ~1 MiB JSON payload (quoted string).
	big := `"` + strings.Repeat("a", 1<<20) + `"`
	out, err := c.Call("echo", "run", []byte(big))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(big) {
		t.Fatalf("size %d vs %d", len(out), len(big))
	}
}

func TestOversizedCallFailsCleanly(t *testing.T) {
	// A batch RPC whose payload exceeds the frame cap must return a clean
	// error on that call without killing the connection. The cap is
	// shrunk so the test does not allocate 256 MiB.
	old := maxFrameBytes
	maxFrameBytes = 1 << 16
	defer func() { maxFrameBytes = old }()

	s := NewServer()
	s.Register("echo", HandlerFunc(func(m string, p []byte) ([]byte, error) { return p, nil }))
	c := NewPipeClient(s)
	defer func() { c.Close(); s.Close() }()

	big := `"` + strings.Repeat("b", 1<<17) + `"`
	if _, err := c.Call("echo", "run", []byte(big)); err == nil || !strings.Contains(err.Error(), "frame too large") {
		t.Fatalf("oversized call error = %v, want frame-too-large", err)
	}
	// The connection must survive: a normal call still round-trips.
	out, err := c.Call("echo", "run", []byte(`"ok"`))
	if err != nil {
		t.Fatalf("connection dead after oversized call: %v", err)
	}
	if string(out) != `"ok"` {
		t.Fatalf("round trip %q", out)
	}
}

func TestOversizedResponseFailsCleanly(t *testing.T) {
	// A handler reply over the cap becomes an RPC error, not a hung call
	// or dead connection.
	old := maxFrameBytes
	maxFrameBytes = 1 << 16
	defer func() { maxFrameBytes = old }()

	s := NewServer()
	s.Register("blob", HandlerFunc(func(m string, p []byte) ([]byte, error) {
		return []byte(`"` + strings.Repeat("r", 1<<17) + `"`), nil
	}))
	s.Register("echo", HandlerFunc(func(m string, p []byte) ([]byte, error) { return p, nil }))
	c := NewPipeClient(s)
	defer func() { c.Close(); s.Close() }()

	if _, err := c.Call("blob", "run", nil); err == nil || !strings.Contains(err.Error(), "frame cap") {
		t.Fatalf("oversized response error = %v, want frame-cap error", err)
	}
	if _, err := c.Call("echo", "run", []byte(`"ok"`)); err != nil {
		t.Fatalf("connection dead after oversized response: %v", err)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := NewServer()
	s.Register("echo", HandlerFunc(echoHandler))
	addr, err := s.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	call := c.Go("echo", "slow", nil)
	s.Close()
	if _, err := call.Result(); err == nil {
		// The slow handler may have finished before close; that's fine too —
		// but a second call must now fail.
		if _, err := c.Call("echo", "run", nil); err == nil {
			t.Fatal("call succeeded after server close")
		}
	}
}
