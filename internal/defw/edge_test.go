package defw

import (
	"bytes"
	"strings"
	"testing"
)

func TestOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	// Length prefix claiming 1 GiB must be refused before allocation.
	buf.Write([]byte{0x40, 0x00, 0x00, 0x00})
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte(`{"hello":"world"}`)
	if err := writeFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("round trip %q", got)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 'x', 'y'}) // claims 10 bytes, has 2
	if _, err := readFrame(&buf); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestLargePayloadThroughRPC(t *testing.T) {
	s := NewServer()
	s.Register("echo", HandlerFunc(func(m string, p []byte) ([]byte, error) { return p, nil }))
	c := NewPipeClient(s)
	defer func() { c.Close(); s.Close() }()
	// A ~1 MiB JSON payload (quoted string).
	big := `"` + strings.Repeat("a", 1<<20) + `"`
	out, err := c.Call("echo", "run", []byte(big))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(big) {
		t.Fatalf("size %d vs %d", len(out), len(big))
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	s := NewServer()
	s.Register("echo", HandlerFunc(echoHandler))
	addr, err := s.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	call := c.Go("echo", "slow", nil)
	s.Close()
	if _, err := call.Result(); err == nil {
		// The slow handler may have finished before close; that's fine too —
		// but a second call must now fail.
		if _, err := c.Call("echo", "run", nil); err == nil {
			t.Fatal("call succeeded after server close")
		}
	}
}
