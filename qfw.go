// Package qfw is the public API of the Quantum Framework reproduction: an
// HPC-aware, backend-agnostic orchestration layer for hybrid quantum-HPC
// workloads (Chundury et al., "Scaling Hybrid Quantum-HPC Applications with
// the Quantum Framework", SC 2025).
//
// A typical application launches a session (which models the paper's SLURM
// heterogeneous job: hetgroup-0 for the application, hetgroup-1 for QFw
// services), selects a backend by properties, and runs circuits through the
// uniform frontend — swapping simulators or the cloud backend without
// changing application code:
//
//	session, err := qfw.Launch(qfw.Config{})
//	defer session.Teardown()
//	backend, err := session.Frontend(qfw.Properties{
//	    Backend:    "nwqsim",
//	    Subbackend: "MPI",
//	})
//	res, err := backend.Run(qfw.GHZ(8), qfw.RunOptions{Shots: 1024})
//
// Five backends are registered: "nwqsim" (distributed state vector),
// "aer" (statevector / matrix_product_state / stabilizer / automatic),
// "tnqvm" (exatn-mps), "qtensor" (tree tensor network), and "ionq"
// (simulated cloud REST service).
//
// # Batched parametric execution
//
// Variational workloads evaluate one ansatz under many parameter bindings
// per optimizer iteration. The batch API ships the symbolic circuit once
// and the bindings as a list, costing a single submit_batch RPC (and a
// single QASM parse backend-side) for the whole candidate set:
//
//	ansatz := qfw.NewCircuit(2)
//	ansatz.RY(0, qfw.Sym("theta", 1)).CX(0, 1).MeasureAll()
//	results, err := backend.RunBatch(ansatz, []qfw.Bindings{
//	    {"theta": 0.1}, {"theta": 0.7}, {"theta": 1.3},
//	}, qfw.RunOptions{Shots: 512})
//
// Results come back ordered; element i uses the deterministic seed a serial
// loop would have used. RunBatchAsync returns a PendingBatch handle for the
// non-blocking variant. SolveQAOA, SolveDQAOA, and SolveVQLS route their
// per-iteration candidate sets through this path automatically; the
// `qfwbench -exp ablation-batch` experiment tracks the resulting speedup
// over per-circuit submission.
package qfw

import (
	"math/rand"

	_ "qfw/internal/backends" // register the five backend QPMs
	"qfw/internal/circuit"
	"qfw/internal/cluster"
	"qfw/internal/core"
	"qfw/internal/dqaoa"
	"qfw/internal/qaoa"
	"qfw/internal/qubo"
	"qfw/internal/trace"
	"qfw/internal/vqls"
	"qfw/internal/workloads"
)

// Re-exported orchestration types.
type (
	// Config describes a full-stack deployment (machine model, het group
	// sizes, QRC worker counts, transport, memory budget, cloud knobs).
	Config = core.Config
	// Session is a running QFw deployment.
	Session = core.Session
	// Properties selects a backend and sub-backend.
	Properties = core.Properties
	// Frontend is the application-side QFwBackend handle.
	Frontend = core.Frontend
	// RunOptions configure one execution request.
	RunOptions = core.RunOptions
	// Result is QFw's unified result format.
	Result = core.Result
	// Capabilities is a backend's Table-1 row.
	Capabilities = core.Capabilities
	// Bindings assigns values to a parametric circuit's symbols — one
	// Bindings per batch element.
	Bindings = core.Bindings
	// PendingBatch is an in-flight asynchronous batch execution.
	PendingBatch = core.PendingBatch
	// GradResult is one analytic gradient evaluation: the exact expectation
	// value and its partial derivatives over the circuit's sorted parameter
	// names (see Frontend.RunGradient).
	GradResult = core.GradResult
	// Observable is an operator attached to a run or gradient request:
	// H = Σ Fields Z_i + Σ Couplings V Z_i Z_j + Σ Paulis Coeff·P.
	Observable = core.Observable
	// Coupling is one quadratic term of a diagonal observable.
	Coupling = core.Coupling
	// PauliTerm is one general Pauli-string observable term.
	PauliTerm = core.PauliTerm
)

// Re-exported circuit IR types.
type (
	// Circuit is the gate-level IR shared by all frontends and backends.
	Circuit = circuit.Circuit
	// Param is a bound or symbolic gate angle.
	Param = circuit.Param
	// Gate is one circuit operation.
	Gate = circuit.Gate
)

// Re-exported problem/algorithm types.
type (
	// QUBO is a quadratic unconstrained binary optimization problem.
	QUBO = qubo.QUBO
	// QAOAOptions tune a QAOA solve.
	QAOAOptions = qaoa.Options
	// QAOAResult summarizes a QAOA solve.
	QAOAResult = qaoa.Result
	// DQAOAConfig tunes a distributed QAOA solve.
	DQAOAConfig = dqaoa.Config
	// DQAOAResult summarizes a distributed QAOA solve.
	DQAOAResult = dqaoa.Result
	// Recorder collects timing spans (Fig. 5 timelines).
	Recorder = trace.Recorder
	// Machine is the cluster model sessions deploy onto.
	Machine = cluster.Machine
)

// Launch boots the full stack: SLURM heterogeneous job, PRTE DVM, and one
// QPM service per registered backend. Teardown the session when done.
func Launch(cfg Config) (*Session, error) { return core.Launch(cfg) }

// Frontier returns the paper's evaluation platform model with the given
// node count (64-core EPYC, 8 LLC domains, 512 GiB, 8 GCDs, Slingshot).
func Frontier(nodes int) *Machine { return cluster.Frontier(nodes) }

// Laptop returns a small machine model for local experimentation.
func Laptop(nodes int) *Machine { return cluster.Laptop(nodes) }

// RegisteredBackends lists the available backend names.
func RegisteredBackends() []string { return core.RegisteredBackends() }

// NewCircuit returns an empty circuit on n qubits.
func NewCircuit(n int) *Circuit { return circuit.New(n) }

// Bound returns a concrete gate angle.
func Bound(v float64) Param { return circuit.Bound(v) }

// Sym returns the symbolic angle coeff*θ(name) for variational circuits.
func Sym(name string, coeff float64) Param { return circuit.Sym(name, coeff) }

// ParseQASM parses OpenQASM 2.0 into the circuit IR.
func ParseQASM(src string) (*Circuit, error) { return circuit.ParseQASM(src) }

// Workload builders (the paper's Table 2).

// GHZ returns the n-qubit GHZ preparation benchmark.
func GHZ(n int) *Circuit { return workloads.GHZ(n) }

// HamSim returns the SupermarQ Hamiltonian-simulation benchmark.
func HamSim(n, steps int) *Circuit { return workloads.HamSim(n, steps) }

// TFIM returns the transverse-field Ising evolution benchmark.
func TFIM(n, steps int, hx, t float64) *Circuit { return workloads.TFIM(n, steps, hx, t) }

// HHL returns the linear-solver benchmark with the paper's total qubit
// count (5, 7, ..., 17).
func HHL(totalQubits int) *Circuit { return workloads.HHL(workloads.HHLSize(totalQubits)) }

// Problem generators.

// RandomQUBO generates a dense random QUBO instance.
func RandomQUBO(n int, density, scale float64, seed int64) *QUBO {
	return qubo.Random(n, density, scale, rand.New(rand.NewSource(seed)))
}

// MetamaterialQUBO generates the structured instance class of the paper's
// DQAOA metamaterial-optimization application.
func MetamaterialQUBO(n int, seed int64) *QUBO {
	return qubo.Metamaterial(n, rand.New(rand.NewSource(seed)))
}

// SolveQAOA runs the hybrid QAOA loop against any QFw frontend.
func SolveQAOA(q *QUBO, backend *Frontend, opts QAOAOptions) (*QAOAResult, error) {
	return qaoa.Solve(q, backend, opts)
}

// SolveDQAOA runs the distributed QAOA decompose/solve/aggregate loop.
func SolveDQAOA(q *QUBO, backend *Frontend, cfg DQAOAConfig) (*DQAOAResult, error) {
	return dqaoa.Solve(q, backend, cfg)
}

// NewRecorder returns a fresh timing recorder for Fig.-5-style timelines.
func NewRecorder() *Recorder { return trace.NewRecorder() }

// VQLS types (the variational linear solver the paper lists among QFw
// applications).
type (
	// VQLSProblem is a linear system A|x> ∝ |b> with A as a Pauli sum.
	VQLSProblem = vqls.Problem
	// VQLSOptions tune a VQLS solve.
	VQLSOptions = vqls.Options
	// VQLSResult summarizes a VQLS solve.
	VQLSResult = vqls.Result
)

// IsingVQLS builds a well-conditioned Ising-type linear system instance.
func IsingVQLS(n int, j, hx, eta float64) *VQLSProblem { return vqls.IsingA(n, j, hx, eta) }

// SolveVQLS trains the variational linear solver against a QFw backend
// (local simulator backends only: the cost uses general Pauli observables).
func SolveVQLS(p *VQLSProblem, backend *Frontend, opts VQLSOptions) (*VQLSResult, error) {
	return vqls.Solve(p, backend, opts)
}
