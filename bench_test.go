package qfw

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benchmarks for the design choices
// DESIGN.md calls out. The figure benchmarks run the same experiment
// runners as cmd/qfwbench at laptop-scale sizes; run
//
//	go test -bench=. -benchmem
//
// for the quick suite and `go run ./cmd/qfwbench -exp all` for the
// paper-scale sweep with full size lists.

import (
	"fmt"
	"testing"
	"time"

	"qfw/internal/bench"
	"qfw/internal/cluster"
	"qfw/internal/core"
	"qfw/internal/defw"
	"qfw/internal/dqaoa"
	"qfw/internal/mpi"
	"qfw/internal/mps"
	"qfw/internal/qaoa"
	"qfw/internal/qubo"
	"qfw/internal/stabilizer"
	"qfw/internal/statevec"
	"qfw/internal/tensornet"
	"qfw/internal/workloads"

	"math/rand"
)

// benchHarness boots a quick-mode session shared by one benchmark.
func benchHarness(b *testing.B) *bench.Harness {
	b.Helper()
	s, err := core.Launch(core.Config{
		Machine:      cluster.Frontier(3),
		CloudLatency: time.Millisecond,
		CloudJitter:  time.Millisecond,
		Seed:         9,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Teardown)
	h := bench.NewHarness(s)
	h.Quick = true
	h.Repeats = 1
	h.Shots = 64
	return h
}

func BenchmarkTable1Capabilities(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RunCapabilityTable(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Catalog(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if exp := h.RunBenchmarkCatalog(); exp.Text == "" {
			b.Fatal("empty catalog")
		}
	}
}

func benchWorkloadFigure(b *testing.B, id, workload string) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp, err := h.RunWorkloadFigure(id, workload)
		if err != nil {
			b.Fatal(err)
		}
		if len(exp.Series) == 0 {
			b.Fatal("no series")
		}
	}
}

func BenchmarkFig3aGHZ(b *testing.B)  { benchWorkloadFigure(b, "fig3a", "ghz") }
func BenchmarkFig3bHAM(b *testing.B)  { benchWorkloadFigure(b, "fig3b", "ham") }
func BenchmarkFig3cTFIM(b *testing.B) { benchWorkloadFigure(b, "fig3c", "tfim") }
func BenchmarkFig3dHHL(b *testing.B)  { benchWorkloadFigure(b, "fig3d", "hhl") }

func BenchmarkFig3cStrongScaling(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.RunStrongScaling(12, []int{1, 2, 4}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3eQAOA(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, _, err := h.RunQAOAFigure()
		if err != nil {
			b.Fatal(err)
		}
		if len(rt.Series) == 0 {
			b.Fatal("no series")
		}
	}
}

func BenchmarkFig3fQAOAFidelity(b *testing.B) {
	h := benchHarness(b)
	var minFid float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, fid, err := h.RunQAOAFigure()
		if err != nil {
			b.Fatal(err)
		}
		minFid = 100.0
		for _, s := range fid.Series {
			for _, p := range s.Points {
				if p.Err == "" && p.Fidelity < minFid {
					minFid = p.Fidelity
				}
			}
		}
	}
	b.ReportMetric(minFid, "min-fidelity-%")
}

func BenchmarkFig4DQAOA(b *testing.B) {
	h := benchHarness(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp, err := h.RunDQAOAFigure()
		if err != nil {
			b.Fatal(err)
		}
		if len(exp.Series) != 2 {
			b.Fatal("want local + cloud series")
		}
	}
}

func BenchmarkFig5Timeline(b *testing.B) {
	h := benchHarness(b)
	var conc int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, recs, err := h.RunTimelineFigure(bench.DQAOAConfig{QUBOSize: 14, SubQSize: 6, NSubQ: 4})
		if err != nil {
			b.Fatal(err)
		}
		conc = recs["NWQ-Sim"].MaxConcurrency("subqaoa")
	}
	b.ReportMetric(float64(conc), "max-concurrent-subqaoas")
}

// ---- Ablation benchmarks -----------------------------------------------

// BenchmarkAblationAsyncDispatch compares concurrent vs serialized
// sub-QUBO dispatch in DQAOA — the paper's asynchronous orchestration claim.
func BenchmarkAblationAsyncDispatch(b *testing.B) {
	q := qubo.Metamaterial(16, rand.New(rand.NewSource(1)))
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := dqaoa.Solve(q, qaoa.LocalRunner{}, dqaoa.Config{
					SubQSize: 6, NSubQ: 4, MaxIter: 2, Patience: 3,
					Async: async, Seed: 2, Shots: 128, MaxEvals: 10,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBondDim sweeps the MPS truncation bond over a TFIM
// evolution — the accuracy/speed dial behind Aer-MPS's Fig. 3c win.
func BenchmarkAblationBondDim(b *testing.B) {
	c := workloads.TFIM(16, 6, 0.5, 1.0)
	for _, bond := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("bond%d", bond), func(b *testing.B) {
			var truncErr float64
			for i := 0; i < b.N; i++ {
				_, te, err := mps.Simulate(c, 64, bond, 1e-10, rand.New(rand.NewSource(3)))
				if err != nil {
					b.Fatal(err)
				}
				truncErr = te
			}
			b.ReportMetric(truncErr, "trunc-err")
		})
	}
}

// BenchmarkAblationRankSweep runs the distributed state-vector engine at
// several rank counts on a fixed circuit: the computation shrinks per rank
// while the pair-exchange communication grows.
func BenchmarkAblationRankSweep(b *testing.B) {
	c := workloads.GHZ(16)
	for _, ranks := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks%d", ranks), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := mpi.NewWorld(ranks)
				err := w.Run(func(comm *mpi.Comm) error {
					_, err := statevec.RunDistributed(comm, c, 64, 5)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDecomposition compares random vs impact-factor QUBO
// decomposition quality and cost.
func BenchmarkAblationDecomposition(b *testing.B) {
	q := qubo.Metamaterial(18, rand.New(rand.NewSource(6)))
	for _, dec := range []dqaoa.Decomposer{dqaoa.DecomposeRandom, dqaoa.DecomposeImpact} {
		b.Run(string(dec), func(b *testing.B) {
			var quality float64
			for i := 0; i < b.N; i++ {
				res, err := dqaoa.Solve(q, qaoa.LocalRunner{}, dqaoa.Config{
					SubQSize: 6, NSubQ: 3, MaxIter: 2, Patience: 3,
					Decomposer: dec, Seed: 7, Shots: 128, MaxEvals: 10, Async: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				quality = res.Quality
			}
			b.ReportMetric(quality*100, "quality-%")
		})
	}
}

// BenchmarkAblationTransport compares the DEFw RPC transports: in-process
// pipes vs TCP loopback.
func BenchmarkAblationTransport(b *testing.B) {
	for _, useTCP := range []bool{false, true} {
		name := "pipe"
		if useTCP {
			name = "tcp"
		}
		b.Run(name, func(b *testing.B) {
			s, err := core.Launch(core.Config{
				Machine:  cluster.Frontier(2),
				Backends: []string{"aer"},
				UseTCP:   useTCP,
				Seed:     8,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Teardown()
			f, err := s.Frontend(core.Properties{Backend: "aer", Subbackend: "statevector"})
			if err != nil {
				b.Fatal(err)
			}
			c := workloads.GHZ(8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Run(c, core.RunOptions{Shots: 64, Seed: 9}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLLCPlacement contrasts LLC-aware round-robin placement
// with packing every rank into one LLC domain, using the interconnect cost
// model: the packed layout minimizes modelled latency for small messages,
// while spreading across domains is what the reservation policy needs for
// OS-noise isolation (the paper's Sec. 7 system-level optimization).
func BenchmarkAblationLLCPlacement(b *testing.B) {
	machine := cluster.Frontier(1)
	node := machine.Nodes[0]
	spread, err := node.PlaceProcs(8) // round-robin: 8 procs on 8 LLC domains
	if err != nil {
		b.Fatal(err)
	}
	packed := make([]cluster.CorePlace, 8)
	for i := range packed {
		packed[i] = cluster.CorePlace{Node: 0, LLC: 0, Core: i}
	}
	layouts := map[string][]cluster.CorePlace{"spread": spread, "packed": packed}
	for name, places := range layouts {
		b.Run(name, func(b *testing.B) {
			var modelled time.Duration
			w := mpi.NewWorld(8,
				mpi.WithPlacement(places, machine.Net),
				mpi.WithSleeper(func(d time.Duration) { modelled += d }))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				err := w.Run(func(comm *mpi.Comm) error {
					for k := 0; k < 50; k++ {
						comm.AllreduceSum(1)
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(modelled.Microseconds())/float64(b.N), "modelled-comm-us/op")
		})
	}
}

// BenchmarkRPCRoundTrip measures the raw DEFw call overhead that dominates
// very small sub-QUBOs (the paper's observation that tiny sub-problems lose
// efficiency to RPC and scheduling).
func BenchmarkRPCRoundTrip(b *testing.B) {
	server := defw.NewServer()
	server.Register("echo", defw.HandlerFunc(func(m string, p []byte) ([]byte, error) { return p, nil }))
	client := defw.NewPipeClient(server)
	defer func() { client.Close(); server.Close() }()
	payload := []byte(`{"x":1}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call("echo", "run", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorKernels gives per-engine gate throughput context for
// the figure benchmarks.
func BenchmarkSimulatorKernels(b *testing.B) {
	c := workloads.TFIM(14, 4, 0.5, 1.0)
	b.Run("statevec", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			statevec.Simulate(c, 64, 1, rand.New(rand.NewSource(1)))
		}
	})
	b.Run("statevec-4workers", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			statevec.Simulate(c, 64, 4, rand.New(rand.NewSource(1)))
		}
	})
	b.Run("mps", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := mps.Simulate(c, 64, 0, 0, rand.New(rand.NewSource(1))); err != nil {
				b.Fatal(err)
			}
		}
	})
	ghz := workloads.GHZ(14)
	b.Run("stabilizer-ghz", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := stabilizer.Simulate(ghz, 64, rand.New(rand.NewSource(1))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tensornet-ghz", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tensornet.Simulate(ghz, 64, rand.New(rand.NewSource(1))); err != nil {
				b.Fatal(err)
			}
		}
	})
}
