// Quickstart: launch the framework, run a GHZ circuit on one backend, then
// rerun the identical circuit on a different backend by changing only the
// properties — the paper's core portability claim.
package main

import (
	"fmt"
	"log"

	"qfw"
)

func main() {
	// Launch the full stack: a SLURM job with two heterogeneous groups
	// (hetgroup-0 for this application, hetgroup-1 for QFw services), a
	// PRTE DVM, and one QPM service per backend.
	session, err := qfw.Launch(qfw.Config{Machine: qfw.Frontier(4)})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Teardown()
	fmt.Printf("session up: DVM %s, backends %v\n\n", session.DVM.URI, session.Backends())

	circuit := qfw.GHZ(10)
	for _, props := range []qfw.Properties{
		{Backend: "aer", Subbackend: "automatic"},
		{Backend: "nwqsim", Subbackend: "MPI"},
		{Backend: "tnqvm", Subbackend: "exatn-mps"},
	} {
		backend, err := session.Frontend(props)
		if err != nil {
			log.Fatal(err)
		}
		res, err := backend.Run(circuit, qfw.RunOptions{Shots: 1000, Seed: 7, Nodes: 2, ProcsPerNode: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s/%-22s exec %8.2f ms  counts: 0...0=%d 1...1=%d\n",
			props.Backend, props.Subbackend, res.Timings.ExecMS,
			res.Counts["0000000000"], res.Counts["1111111111"])
	}
	fmt.Println("\nsame application code, three backends — only the properties changed")
}
