// Variational QAOA: run the full hybrid loop — parameterized ansatz,
// shot-based expectation estimation through the framework, Nelder-Mead
// parameter updates — on a random QUBO, and report solution fidelity
// against the exact optimum (the paper's Figs. 3e/3f at a single size).
package main

import (
	"fmt"
	"log"
	"time"

	"qfw"
)

func main() {
	session, err := qfw.Launch(qfw.Config{Machine: qfw.Frontier(3)})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Teardown()

	const n = 10
	problem := qfw.RandomQUBO(n, 0.5, 1.0, 99)
	fmt.Printf("QAOA on a random %d-variable QUBO (p=2)\n\n", n)

	backend, err := session.Frontend(qfw.Properties{Backend: "aer", Subbackend: "statevector"})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := qfw.SolveQAOA(problem, backend, qfw.QAOAOptions{
		P:        2,
		Shots:    512,
		MaxEvals: 60,
		Seed:     4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid loop finished in %v after %d circuit evaluations\n",
		time.Since(start).Round(time.Millisecond), res.Evals)
	fmt.Printf("best sampled bitstring: %v\n", res.Bits)
	fmt.Printf("energy %.4f | final <H> %.4f | params %v\n", res.Energy, res.Expectation, res.Params)

	// Exact reference (brute force at this size — the role D-Wave plays in
	// the paper's fidelity figure).
	exactBits, exactE := exactSolve(problem, n)
	fmt.Printf("exact optimum:          %v (energy %.4f)\n", exactBits, exactE)
	if res.Energy <= exactE+1e-9 {
		fmt.Println("fidelity: 100% — QAOA sampled the exact optimum")
	} else {
		fmt.Printf("gap to optimum: %.4f\n", res.Energy-exactE)
	}
}

// exactSolve enumerates all assignments (fine at n=10).
func exactSolve(q *qfw.QUBO, n int) ([]int, float64) {
	best := make([]int, n)
	bits := make([]int, n)
	bestE := 0.0
	first := true
	for mask := 0; mask < 1<<n; mask++ {
		for i := 0; i < n; i++ {
			bits[i] = (mask >> i) & 1
		}
		if e := q.Energy(bits); first || e < bestE {
			bestE = e
			copy(best, bits)
			first = false
		}
	}
	return best, bestE
}
