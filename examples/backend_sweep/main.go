// Backend sweep: run one TFIM evolution circuit across every integrated
// backend and sub-backend and print a runtime comparison table — the
// single-workload slice of the paper's Fig. 3c, showing the MPS engines'
// advantage on nearest-neighbour low-entanglement circuits.
package main

import (
	"fmt"
	"log"
	"time"

	"qfw"
)

func main() {
	session, err := qfw.Launch(qfw.Config{
		Machine:      qfw.Frontier(3),
		CloudLatency: 30 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Teardown()

	const n = 14
	circuit := qfw.TFIM(n, 4, 0.5, 1.0)
	fmt.Printf("TFIM-%d (%d gates, depth %d) across all backends\n\n", n, len(circuit.Gates), circuit.Depth())
	fmt.Printf("%-10s %-24s %12s %10s\n", "backend", "sub-backend", "exec (ms)", "trunc-err")

	selections := []qfw.Properties{
		{Backend: "nwqsim", Subbackend: "MPI"},
		{Backend: "nwqsim", Subbackend: "OpenMP"},
		{Backend: "aer", Subbackend: "statevector"},
		{Backend: "aer", Subbackend: "matrix_product_state"},
		{Backend: "aer", Subbackend: "automatic"},
		{Backend: "tnqvm", Subbackend: "exatn-mps"},
		{Backend: "qtensor", Subbackend: "numpy"},
		{Backend: "ionq", Subbackend: "simulator"},
	}
	for _, props := range selections {
		backend, err := session.Frontend(props)
		if err != nil {
			log.Fatal(err)
		}
		res, err := backend.Run(circuit, qfw.RunOptions{
			Shots: 512, Seed: 3, Nodes: 2, ProcsPerNode: 4,
		})
		if err != nil {
			fmt.Printf("%-10s %-24s %12s   (%v)\n", props.Backend, props.Subbackend, "—", err)
			continue
		}
		fmt.Printf("%-10s %-24s %12.2f %10.2g\n", props.Backend, props.Subbackend, res.Timings.ExecMS, res.TruncErr)
	}
	fmt.Println("\nMPS engines stay fast on this structured, low-entanglement evolution;")
	fmt.Println("the cloud backend pays network latency and queue time on every call.")
}
