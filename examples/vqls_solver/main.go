// VQLS: train the Variational Quantum Linear Solver through the framework.
// A is an Ising-type Pauli sum, |b> = |+...+>; the cost uses general-Pauli
// observables evaluated exactly by local simulator backends — one of the
// applications the paper's Fig. 1 stacks on top of QFw.
package main

import (
	"fmt"
	"log"
	"time"

	"qfw"
)

func main() {
	session, err := qfw.Launch(qfw.Config{Machine: qfw.Frontier(3)})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Teardown()

	backend, err := session.Frontend(qfw.Properties{Backend: "aer", Subbackend: "statevector"})
	if err != nil {
		log.Fatal(err)
	}

	problem := qfw.IsingVQLS(3, 0.25, 0.2, 1.0)
	fmt.Println("VQLS: solve A|x> ∝ |+++> for A = 1.0·I + 0.25·ΣZZ + 0.2·ΣX (3 qubits)")

	start := time.Now()
	res, err := qfw.SolveVQLS(problem, backend, qfw.VQLSOptions{
		Layers:   2,
		MaxEvals: 250,
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged in %v after %d cost evaluations\n",
		time.Since(start).Round(time.Millisecond), res.Evals)
	fmt.Printf("final cost C(θ) = %.3g  (0 means A|ψ> ∝ |b> exactly)\n", res.Cost)
	if res.Cost < 0.05 {
		fmt.Println("the trained ansatz state is a valid normalized solution A⁻¹|b>")
	} else {
		fmt.Println("increase -layers or MaxEvals for tighter convergence")
	}
}
