// DQAOA metamaterial optimization: decompose a layered-stack QUBO into
// sub-QUBOs, solve them concurrently through the framework on a local MPI
// backend and on the simulated IonQ cloud, and compare total times and the
// iteration-level timeline — the paper's Figs. 4 and 5 as an application.
package main

import (
	"fmt"
	"log"
	"time"

	"qfw"
)

func main() {
	session, err := qfw.Launch(qfw.Config{
		Machine:      qfw.Frontier(3),
		CloudLatency: 25 * time.Millisecond,
		CloudJitter:  15 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Teardown()

	// A 24-layer metamaterial stack: variable i decides layer i's material.
	problem := qfw.MetamaterialQUBO(24, 42)
	fmt.Println("DQAOA metamaterial optimization: 24 variables, (subqsize=8, nsubq=4)")

	for _, props := range []qfw.Properties{
		{Backend: "nwqsim", Subbackend: "OpenMP"},
		{Backend: "ionq", Subbackend: "simulator"},
	} {
		backend, err := session.Frontend(props)
		if err != nil {
			log.Fatal(err)
		}
		recorder := qfw.NewRecorder()
		res, err := qfw.SolveDQAOA(problem, backend, qfw.DQAOAConfig{
			SubQSize: 8,
			NSubQ:    4,
			MaxIter:  3,
			Async:    true,
			Seed:     7,
			Shots:    256,
			MaxEvals: 15,
			Recorder: recorder,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s/%s ---\n", props.Backend, props.Subbackend)
		fmt.Printf("total time %v | energy %.4f | quality %.1f%% | %d sub-solves over %d iterations\n",
			res.Elapsed.Round(time.Millisecond), res.Energy, 100*res.Quality, res.SubSolves, res.Iterations)
		fmt.Printf("max concurrent sub-QAOAs: %d\n", recorder.MaxConcurrency("subqaoa"))
		fmt.Print(recorder.Timeline(72))
	}
	fmt.Println("\nThe local backend completes iterations faster and more uniformly;")
	fmt.Println("the cloud path adds internet latency and queue waits (paper Fig. 5).")
}
