// HHL linear solver: build the phase-estimation-based HHL circuit for an
// Ising-type system matrix, run it through the framework on two backends,
// and report the ancilla success probability alongside circuit structure —
// the paper's deep-coherent-subroutine workload (Fig. 3d).
package main

import (
	"fmt"
	"log"
	"strings"

	"qfw"
)

func main() {
	session, err := qfw.Launch(qfw.Config{Machine: qfw.Frontier(3)})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Teardown()

	for _, total := range []int{5, 7, 9} {
		circuit := qfw.HHL(total)
		fmt.Printf("HHL-%d: %d gates, depth %d\n", total, len(circuit.Gates), circuit.Depth())

		for _, props := range []qfw.Properties{
			{Backend: "nwqsim", Subbackend: "MPI"},
			{Backend: "aer", Subbackend: "statevector"},
		} {
			backend, err := session.Frontend(props)
			if err != nil {
				log.Fatal(err)
			}
			res, err := backend.Run(circuit, qfw.RunOptions{
				Shots: 2048, Seed: 5, Nodes: 1, ProcsPerNode: 4,
			})
			if err != nil {
				log.Fatal(err)
			}
			// The ancilla is qubit 0 (rightmost character of each key);
			// shots with ancilla=1 carry the solution component A^{-1}|b>.
			success := 0
			totalShots := 0
			for key, n := range res.Counts {
				if strings.HasSuffix(key, "1") {
					success += n
				}
				totalShots += n
			}
			fmt.Printf("  %-8s/%-12s exec %9.2f ms | ancilla success %5.2f%% (%d/%d shots)\n",
				props.Backend, props.Subbackend, res.Timings.ExecMS,
				100*float64(success)/float64(totalShots), success, totalShots)
		}
	}
	fmt.Println("\nDepth grows exponentially with the clock register (controlled-U^{2^j}),")
	fmt.Println("which is why HHL scalability degrades fastest among the Table-2 workloads.")
}
