module qfw

go 1.24
